#include "trace/trace_io.hh"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <utility>

#include "common/logging.hh"

namespace hdrd::trace
{

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &name,
                         std::uint32_t nthreads,
                         const std::string &fault_spec)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        return;
    header_.nthreads = nthreads;
    const std::size_t n =
        std::min(name.size(), header_.name.size() - 1);
    std::memcpy(header_.name.data(), name.data(), n);
    const std::size_t f = std::min(fault_spec.size(),
                                   header_.fault_spec.size() - 1);
    std::memcpy(header_.fault_spec.data(), fault_spec.data(), f);
    // Reserve header space; patched with the count in finalize().
    out_.write(reinterpret_cast<const char *>(&header_),
               sizeof(header_));
    ok_ = static_cast<bool>(out_);
}

TraceWriter::~TraceWriter()
{
    if (ok_ && !finalized_)
        finalize();
}

void
TraceWriter::record(ThreadId tid, const runtime::Op &op)
{
    if (!ok_ || finalized_)
        return;
    const TraceRecord record = TraceRecord::fromOp(tid, op);
    out_.write(reinterpret_cast<const char *>(&record),
               sizeof(record));
    if (!out_) {
        // Disk full or similar: poison the writer so finalize()
        // reports the failure instead of leaving a silently short
        // trace behind.
        ok_ = false;
        return;
    }
    ++count_;
}

bool
TraceWriter::finalize()
{
    if (!ok_ || finalized_)
        return false;
    finalized_ = true;
    header_.record_count = count_;
    out_.seekp(0);
    out_.write(reinterpret_cast<const char *>(&header_),
               sizeof(header_));
    out_.close();
    return static_cast<bool>(out_);
}

const std::vector<runtime::Op> &
TraceData::threadOps(ThreadId tid) const
{
    hdrdAssert(tid < per_thread_.size(),
               "trace has no thread ", tid);
    return per_thread_[tid];
}

TraceReader::TraceReader(ByteSource &source,
                         std::uint64_t total_bytes)
    : source_(source), total_bytes_(total_bytes),
      streaming_(total_bytes == kUnknownSize)
{
}

bool
TraceReader::readExact(char *dst, std::size_t n)
{
    std::size_t have = 0;
    while (have < n) {
        const std::size_t got = source_.read(dst + have, n - have);
        if (got == 0)
            return false;
        have += got;
    }
    return true;
}

bool
TraceReader::fillStash(std::size_t n)
{
    hdrdAssert(n <= stash_.size(), "stash overflow");
    while (stash_len_ < n) {
        const std::size_t got = source_.read(
            stash_.data() + stash_len_, n - stash_len_);
        if (got == 0)
            return false;
        stash_len_ += got;
    }
    return true;
}

bool
TraceReader::readHeader()
{
    if (header_ok_ || !error_.empty())
        return header_ok_;
    if (!streaming_ && total_bytes_ < sizeof(TraceHeaderV1)) {
        error_ = "truncated header ("
            + std::to_string(total_bytes_) + " bytes, need "
            + std::to_string(sizeof(TraceHeaderV1)) + ")";
        return false;
    }

    // Both header versions share the v1 prefix; the magic decides
    // whether the v2 metadata tail follows. The stash carries a
    // partial header across streaming stalls, so a chunk boundary
    // anywhere inside it — including the first byte — resumes.
    if (!fillStash(sizeof(TraceHeaderV1))) {
        if (streaming_ && !ended_)
            return false; // stalled: retry after more bytes arrive
        error_ = "truncated header";
        return false;
    }
    TraceHeader header;
    std::memcpy(reinterpret_cast<char *>(&header), stash_.data(),
                sizeof(TraceHeaderV1));
    if (header.magic == kMagic) {
        if (!streaming_ && total_bytes_ < sizeof(TraceHeader)) {
            error_ = "truncated v2 header ("
                + std::to_string(total_bytes_) + " bytes, need "
                + std::to_string(sizeof(TraceHeader)) + ")";
            return false;
        }
        if (!fillStash(sizeof(TraceHeader))) {
            if (streaming_ && !ended_)
                return false;
            error_ = "truncated v2 header";
            return false;
        }
        std::memcpy(header.fault_spec.data(),
                    stash_.data() + sizeof(TraceHeaderV1),
                    header.fault_spec.size());
    } else if (header.magic != kMagicV1) {
        error_ = "bad magic (not an hdrd trace?)";
        return false;
    }
    const std::uint64_t header_size = header.magic == kMagic
        ? sizeof(TraceHeader) : sizeof(TraceHeaderV1);
    stash_len_ = 0;
    if (header.nthreads == 0 || header.nthreads > 4096) {
        error_ = "implausible thread count "
            + std::to_string(header.nthreads);
        return false;
    }

    // The size-consistency checks need the total up front; in
    // streaming mode a short stream surfaces as truncation at the
    // missing record instead, and trailing bytes are the feeding
    // layer's to reject.
    if (!streaming_) {
        const std::uint64_t payload = total_bytes_ - header_size;
        const std::uint64_t expected =
            header.record_count * sizeof(TraceRecord);
        if (header.record_count > payload / sizeof(TraceRecord)) {
            error_ = "truncated: header claims "
                + std::to_string(header.record_count)
                + " records but the file only holds "
                + std::to_string(payload / sizeof(TraceRecord));
            return false;
        }
        if (payload != expected) {
            error_ = std::to_string(payload - expected)
                + " bytes of trailing garbage after "
                + std::to_string(header.record_count) + " records";
            return false;
        }
    }

    name_.assign(header.name.data(),
                 strnlen(header.name.data(), header.name.size()));
    if (header.magic == kMagic) {
        fault_spec_.assign(
            header.fault_spec.data(),
            strnlen(header.fault_spec.data(),
                    header.fault_spec.size()));
        if (fault_spec_.empty())
            fault_spec_ = "none";
    }
    nthreads_ = header.nthreads;
    record_count_ = header.record_count;
    header_ok_ = true;
    return true;
}

std::size_t
TraceReader::next(TraceRecord *out, std::size_t max)
{
    if (!header_ok_ || !error_.empty() || consumed_ == record_count_)
        return 0;
    const std::uint64_t left = record_count_ - consumed_;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, left));
    std::size_t produced = 0;
    for (; produced < want; ++produced) {
        TraceRecord &record = out[produced];
        if (streaming_) {
            if (!fillStash(sizeof(record))) {
                if (!ended_)
                    return produced; // stalled mid-record: resume
                error_ = "truncated at record "
                    + std::to_string(consumed_) + " of "
                    + std::to_string(record_count_);
                return produced;
            }
            std::memcpy(&record, stash_.data(), sizeof(record));
            stash_len_ = 0;
        } else if (!readExact(reinterpret_cast<char *>(&record),
                              sizeof(record))) {
            error_ = "truncated at record "
                + std::to_string(consumed_) + " of "
                + std::to_string(record_count_);
            return 0;
        }
        if (record.tid >= nthreads_) {
            error_ = "record " + std::to_string(consumed_)
                + " names unknown thread "
                + std::to_string(record.tid);
            return streaming_ ? produced : 0;
        }
        if (record.type > kMaxOpType) {
            error_ = "record " + std::to_string(consumed_)
                + " has invalid op type "
                + std::to_string(record.type);
            return streaming_ ? produced : 0;
        }
        ++consumed_;
    }
    return produced;
}

TraceData
TraceData::load(const std::string &path)
{
    TraceData data;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        data.error_ = "cannot open " + path;
        return data;
    }

    // Size the file up front so a corrupt header can't make us read
    // (or allocate for) records that cannot possibly exist.
    in.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);

    IstreamSource source(in);
    TraceReader reader(source, file_size);
    if (!reader.readHeader()) {
        data.error_ = reader.error();
        return data;
    }
    return fromReader(reader);
}

TraceData
TraceData::fromReader(TraceReader &reader)
{
    TraceData data;
    hdrdAssert(reader.error().empty() && reader.nthreads() > 0,
               "fromReader needs a successfully parsed header");
    data.name_ = reader.name();
    data.fault_spec_ = reader.faultSpec();
    data.per_thread_.resize(reader.nthreads());

    TraceRecord batch[4096];
    for (;;) {
        const std::size_t n = reader.next(batch, std::size(batch));
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i)
            data.per_thread_[batch[i].tid].push_back(
                batch[i].toOp());
        data.total_ += n;
    }
    if (!reader.done()) {
        data.error_ = reader.error();
        data.per_thread_.clear();
        data.total_ = 0;
    }
    return data;
}

TraceData
TraceData::fromOps(std::string name,
                   std::vector<std::vector<runtime::Op>> per_thread)
{
    hdrdAssert(!per_thread.empty(),
               "in-memory trace needs at least one thread");
    TraceData data;
    data.name_ = std::move(name);
    data.per_thread_ = std::move(per_thread);
    for (const auto &ops : data.per_thread_)
        data.total_ += ops.size();
    return data;
}

bool
TraceData::save(const std::string &path) const
{
    TraceWriter writer(path, name_, nthreads(), fault_spec_);
    if (!writer.ok())
        return false;
    for (ThreadId tid = 0; tid < nthreads(); ++tid) {
        for (const runtime::Op &op : per_thread_[tid])
            writer.record(tid, op);
    }
    return writer.finalize();
}

} // namespace hdrd::trace
