/**
 * @file
 * Trace writing and reading.
 *
 * TraceWriter streams records to a file (header patched on
 * finalize); TraceData loads and validates a whole trace into
 * memory, partitioned per thread for replay.
 */

#ifndef HDRD_TRACE_TRACE_IO_HH
#define HDRD_TRACE_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/op.hh"
#include "trace/trace_format.hh"

namespace hdrd::trace
{

/**
 * Streams operation records into a trace file.
 */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and reserve the header.
     * @param name program name stored in the header
     * @param nthreads thread count of the recorded program
     * @param fault_spec canonical fault spec of the recording run
     *        ("none" when the signal path is clean)
     */
    TraceWriter(const std::string &path, const std::string &name,
                std::uint32_t nthreads,
                const std::string &fault_spec = "none");

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** True when the file opened successfully. */
    bool ok() const { return ok_; }

    /** Append one operation. */
    void record(ThreadId tid, const runtime::Op &op);

    /**
     * Patch the header with the final count and close the file.
     * @return false when any write (including earlier record()
     *         calls) failed; the file should then be discarded.
     */
    bool finalize();

    /** Records written so far. */
    std::uint64_t recorded() const { return count_; }

  private:
    std::ofstream out_;
    TraceHeader header_;
    std::uint64_t count_ = 0;
    bool ok_ = false;
    bool finalized_ = false;
};

/**
 * A fully loaded, validated trace.
 */
class TraceData
{
  public:
    /**
     * Load @p path.
     * @return the trace, or an empty object whose error() explains
     *         what was wrong (bad magic, truncation, invalid record,
     *         declared record count inconsistent with the file size).
     */
    static TraceData load(const std::string &path);

    /**
     * Build a trace directly from per-thread operation vectors (the
     * shrinker mutates candidate traces in memory without touching
     * disk for every attempt).
     */
    static TraceData fromOps(
        std::string name,
        std::vector<std::vector<runtime::Op>> per_thread);

    /** Write this trace to @p path. @return false on I/O failure. */
    bool save(const std::string &path) const;

    /** True when the load succeeded. */
    bool ok() const { return error_.empty(); }

    /** Why the load failed (empty on success). */
    const std::string &error() const { return error_; }

    /** Program name from the header. */
    const std::string &name() const { return name_; }

    /**
     * Fault spec the trace was recorded under ("none" for clean runs
     * and every v1 trace). Round-trips through save()/load().
     */
    const std::string &faultSpec() const { return fault_spec_; }

    /** Set the fault spec stored by save(). */
    void setFaultSpec(std::string spec)
    {
        fault_spec_ = std::move(spec);
    }

    /** Thread count. */
    std::uint32_t nthreads() const
    {
        return static_cast<std::uint32_t>(per_thread_.size());
    }

    /** Total operations across threads. */
    std::uint64_t totalOps() const { return total_; }

    /** Thread @p tid's operations in program order. */
    const std::vector<runtime::Op> &threadOps(ThreadId tid) const;

  private:
    std::string error_;
    std::string name_;
    std::string fault_spec_ = "none";
    std::uint64_t total_ = 0;
    std::vector<std::vector<runtime::Op>> per_thread_;
};

} // namespace hdrd::trace

#endif // HDRD_TRACE_TRACE_IO_HH
