/**
 * @file
 * Trace writing and reading.
 *
 * TraceWriter streams records to a file (header patched on
 * finalize); TraceReader incrementally parses and validates a trace
 * from any byte source (header first, then record batches), so
 * consumers can reject a bad trace before buffering its body;
 * TraceData loads and validates a whole trace into memory,
 * partitioned per thread for replay.
 */

#ifndef HDRD_TRACE_TRACE_IO_HH
#define HDRD_TRACE_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <istream>
#include <string>
#include <vector>

#include "runtime/op.hh"
#include "trace/trace_format.hh"

namespace hdrd::trace
{

/**
 * Streams operation records into a trace file.
 */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and reserve the header.
     * @param name program name stored in the header
     * @param nthreads thread count of the recorded program
     * @param fault_spec canonical fault spec of the recording run
     *        ("none" when the signal path is clean)
     */
    TraceWriter(const std::string &path, const std::string &name,
                std::uint32_t nthreads,
                const std::string &fault_spec = "none");

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** True when the file opened successfully. */
    bool ok() const { return ok_; }

    /** Append one operation. */
    void record(ThreadId tid, const runtime::Op &op);

    /**
     * Patch the header with the final count and close the file.
     * @return false when any write (including earlier record()
     *         calls) failed; the file should then be discarded.
     */
    bool finalize();

    /** Records written so far. */
    std::uint64_t recorded() const { return count_; }

  private:
    std::ofstream out_;
    TraceHeader header_;
    std::uint64_t count_ = 0;
    bool ok_ = false;
    bool finalized_ = false;
};

/**
 * Abstract pull-based byte source for streaming trace parsing.
 *
 * The reader never seeks, so a source can wrap a plain file, an
 * in-memory buffer, or a socket carrying a length-prefixed trace
 * payload.
 */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;

    /**
     * Read up to @p n bytes into @p dst.
     * @return bytes actually read; 0 means end-of-stream or a read
     *         error (the reader treats both as truncation).
     */
    virtual std::size_t read(char *dst, std::size_t n) = 0;
};

/** ByteSource over a std::istream (files, string streams). */
class IstreamSource : public ByteSource
{
  public:
    explicit IstreamSource(std::istream &in) : in_(in) {}

    std::size_t read(char *dst, std::size_t n) override
    {
        in_.read(dst, static_cast<std::streamsize>(n));
        return static_cast<std::size_t>(in_.gcount());
    }

  private:
    std::istream &in_;
};

/**
 * Incremental, validating trace parser.
 *
 * Usage: construct over a ByteSource whose total trace size is known
 * (file size, or a framed payload length for network streams), call
 * readHeader() — all header-level validation happens here, before a
 * single record byte is consumed — then pull record batches with
 * next() until done(). Any validation failure (bad magic, implausible
 * header, mid-stream truncation, invalid record) poisons the reader
 * with a precise error(); a poisoned reader never yields records.
 *
 * **Streaming mode** (total size unknown up front — chunked network
 * ingestion): construct with kUnknownSize. The source returning 0
 * then means "no bytes available right now", not truncation: the
 * reader stashes any partial header/record — including a chunk
 * boundary that splits a record at its very first byte — and
 * readHeader()/next() return false/0 with an *empty* error(), to be
 * retried once the caller has fed the source more bytes. Call
 * endOfStream() when the producer is done; after that a short read is
 * a truncation error again, and done() requires every declared record
 * to have arrived. Size-vs-header consistency checks that need the
 * total up front are deferred: a short stream surfaces as truncation
 * at the missing record, trailing garbage is the caller's to detect
 * (bytes left in its buffer after done()).
 *
 * TraceData::load() is a thin wrapper; hdrd_served uses the reader
 * directly so a bad trace is rejected from its header without
 * buffering the (possibly huge) body.
 */
class TraceReader
{
  public:
    /** total_bytes sentinel selecting streaming mode. */
    static constexpr std::uint64_t kUnknownSize = ~0ull;

    /**
     * @param source byte stream positioned at the first header byte
     * @param total_bytes declared total size of the trace in bytes,
     *        or kUnknownSize for resumable streaming mode
     */
    TraceReader(ByteSource &source, std::uint64_t total_bytes);

    /**
     * Parse and validate the header.
     * @return false when the header is invalid (see error()), or —
     *         streaming mode only — when it is still incomplete
     *         (error() empty: retry after feeding the source).
     */
    bool readHeader();

    /**
     * Read and validate up to @p max records into @p out.
     * @return records produced; 0 when the stream is exhausted or
     *         the reader is poisoned (check error()/done()), or —
     *         streaming mode only — when the next record is still
     *         incomplete (error() empty, not done(): feed and retry).
     */
    std::size_t next(TraceRecord *out, std::size_t max);

    /**
     * Streaming mode: declare that no further bytes will arrive.
     * An incomplete header or record after this poisons the reader
     * with a truncation error on the next readHeader()/next() call.
     */
    void endOfStream() { ended_ = true; }

    /** True when every declared record was consumed successfully. */
    bool done() const
    {
        return header_ok_ && error_.empty()
            && consumed_ == record_count_;
    }

    /**
     * Streaming mode: true while the reader is healthy but blocked
     * on more input (the retry condition described above).
     */
    bool starved() const
    {
        return streaming_ && error_.empty() && !done() && !ended_;
    }

    /** Why parsing failed (empty while healthy). */
    const std::string &error() const { return error_; }

    /** Records successfully consumed so far. */
    std::uint64_t consumed() const { return consumed_; }

    /** Header fields (valid after a successful readHeader()). */
    const std::string &name() const { return name_; }
    const std::string &faultSpec() const { return fault_spec_; }
    std::uint32_t nthreads() const { return nthreads_; }
    std::uint64_t recordCount() const { return record_count_; }

  private:
    /** Read exactly @p n bytes; false on short read. */
    bool readExact(char *dst, std::size_t n);

    /**
     * Streaming mode: accumulate until the stash holds @p n bytes.
     * @return true when the stash is full; false when the source ran
     *         dry first (a resumable stall, unless endOfStream()).
     */
    bool fillStash(std::size_t n);

    ByteSource &source_;
    std::uint64_t total_bytes_;
    std::string error_;
    std::string name_;
    std::string fault_spec_ = "none";
    std::uint32_t nthreads_ = 0;
    std::uint64_t record_count_ = 0;
    std::uint64_t consumed_ = 0;
    bool header_ok_ = false;
    bool streaming_ = false;
    bool ended_ = false;
    /** Partial header/record carried across streaming stalls. */
    std::array<char, sizeof(TraceHeader)> stash_{};
    std::size_t stash_len_ = 0;
};

/**
 * A fully loaded, validated trace.
 */
class TraceData
{
  public:
    /**
     * Load @p path.
     * @return the trace, or an empty object whose error() explains
     *         what was wrong (bad magic, truncation, invalid record,
     *         declared record count inconsistent with the file size).
     */
    static TraceData load(const std::string &path);

    /**
     * Build a trace directly from per-thread operation vectors (the
     * shrinker mutates candidate traces in memory without touching
     * disk for every attempt).
     */
    static TraceData fromOps(
        std::string name,
        std::vector<std::vector<runtime::Op>> per_thread);

    /**
     * Drain @p reader (whose readHeader() must already have
     * succeeded) into a loaded trace. On any mid-stream failure the
     * result is empty with the reader's error — never a partial
     * trace.
     */
    static TraceData fromReader(TraceReader &reader);

    /** Write this trace to @p path. @return false on I/O failure. */
    bool save(const std::string &path) const;

    /** True when the load succeeded. */
    bool ok() const { return error_.empty(); }

    /** Why the load failed (empty on success). */
    const std::string &error() const { return error_; }

    /** Program name from the header. */
    const std::string &name() const { return name_; }

    /**
     * Fault spec the trace was recorded under ("none" for clean runs
     * and every v1 trace). Round-trips through save()/load().
     */
    const std::string &faultSpec() const { return fault_spec_; }

    /** Set the fault spec stored by save(). */
    void setFaultSpec(std::string spec)
    {
        fault_spec_ = std::move(spec);
    }

    /** Thread count. */
    std::uint32_t nthreads() const
    {
        return static_cast<std::uint32_t>(per_thread_.size());
    }

    /** Total operations across threads. */
    std::uint64_t totalOps() const { return total_; }

    /** Thread @p tid's operations in program order. */
    const std::vector<runtime::Op> &threadOps(ThreadId tid) const;

  private:
    std::string error_;
    std::string name_;
    std::string fault_spec_ = "none";
    std::uint64_t total_ = 0;
    std::vector<std::vector<runtime::Op>> per_thread_;
};

} // namespace hdrd::trace

#endif // HDRD_TRACE_TRACE_IO_HH
