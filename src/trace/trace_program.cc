#include "trace/trace_program.hh"

#include "common/logging.hh"

namespace hdrd::trace
{

namespace
{

/** Replays one thread's recorded op vector. */
class ReplayBody : public runtime::ThreadBody
{
  public:
    explicit ReplayBody(const std::vector<runtime::Op> *ops)
        : ops_(ops)
    {
    }

    bool
    next(runtime::Op &op) override
    {
        if (pos_ >= ops_->size())
            return false;
        op = (*ops_)[pos_++];
        return true;
    }

  private:
    const std::vector<runtime::Op> *ops_;
    std::size_t pos_ = 0;
};

/** Pulls from an inner body, recording every op. */
class RecordingBody : public runtime::ThreadBody
{
  public:
    RecordingBody(ThreadId tid,
                  std::unique_ptr<runtime::ThreadBody> inner,
                  TraceWriter &writer)
        : tid_(tid), inner_(std::move(inner)), writer_(writer)
    {
    }

    bool
    next(runtime::Op &op) override
    {
        if (!inner_->next(op))
            return false;
        writer_.record(tid_, op);
        return true;
    }

    /**
     * The writer appends to one global stream in next()-call order,
     * so fetching ahead would reorder the recorded trace.
     */
    bool nextIsPure() const override { return false; }

  private:
    ThreadId tid_;
    std::unique_ptr<runtime::ThreadBody> inner_;
    TraceWriter &writer_;
};

} // namespace

TraceProgram::TraceProgram(TraceData data)
    : data_(std::move(data)),
      name_(data_.name().empty() ? "trace" : data_.name())
{
    hdrdAssert(data_.ok(), "TraceProgram needs a valid trace: ",
               data_.error());
    name_ += ".replay";
}

std::unique_ptr<runtime::ThreadBody>
TraceProgram::makeThread(ThreadId tid)
{
    return std::make_unique<ReplayBody>(&data_.threadOps(tid));
}

RecordingProgram::RecordingProgram(runtime::Program &inner,
                                   TraceWriter &writer)
    : inner_(inner), writer_(writer)
{
}

std::unique_ptr<runtime::ThreadBody>
RecordingProgram::makeThread(ThreadId tid)
{
    return std::make_unique<RecordingBody>(
        tid, inner_.makeThread(tid), writer_);
}

} // namespace hdrd::trace
