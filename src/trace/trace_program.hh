/**
 * @file
 * Programs backed by traces: replay a recorded trace, or record any
 * Program's streams while it runs.
 */

#ifndef HDRD_TRACE_TRACE_PROGRAM_HH
#define HDRD_TRACE_TRACE_PROGRAM_HH

#include <memory>
#include <string>

#include "runtime/program.hh"
#include "trace/trace_io.hh"

namespace hdrd::trace
{

/**
 * Replays a loaded trace as a runtime::Program. The per-thread
 * operation order is exactly the recorded one; the interleaving is
 * re-derived by whatever scheduler/platform the replay runs on, so
 * one trace supports arbitrary what-if configurations.
 */
class TraceProgram : public runtime::Program
{
  public:
    /** @pre data.ok() */
    explicit TraceProgram(TraceData data);

    const std::string &name() const override { return name_; }

    std::uint32_t numThreads() const override
    {
        return data_.nthreads();
    }

    std::unique_ptr<runtime::ThreadBody>
    makeThread(ThreadId tid) override;

    /** The underlying trace. */
    const TraceData &data() const { return data_; }

  private:
    TraceData data_;
    std::string name_;
};

/**
 * Wraps another Program and tees every operation its threads emit
 * into a TraceWriter. Run it once (any regime) to capture a trace.
 */
class RecordingProgram : public runtime::Program
{
  public:
    /**
     * @param inner program to record (borrowed; must outlive this)
     * @param writer destination (borrowed; must outlive this)
     */
    RecordingProgram(runtime::Program &inner, TraceWriter &writer);

    const std::string &name() const override { return inner_.name(); }

    std::uint32_t numThreads() const override
    {
        return inner_.numThreads();
    }

    bool implicitStart() const override
    {
        return inner_.implicitStart();
    }

    std::vector<runtime::InjectedRace> injectedRaces() const override
    {
        return inner_.injectedRaces();
    }

    std::unique_ptr<runtime::ThreadBody>
    makeThread(ThreadId tid) override;

  private:
    runtime::Program &inner_;
    TraceWriter &writer_;
};

} // namespace hdrd::trace

#endif // HDRD_TRACE_TRACE_PROGRAM_HH
