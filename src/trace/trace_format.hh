/**
 * @file
 * The on-disk trace format: a fixed-size header followed by
 * fixed-width little-endian records, one per operation.
 *
 * Traces capture each thread's operation stream (not the
 * interleaving: the scheduler re-derives that on replay, so one trace
 * can be replayed under any platform/regime configuration). The
 * format favours dead-simple parsing and validation over density.
 */

#ifndef HDRD_TRACE_TRACE_FORMAT_HH
#define HDRD_TRACE_TRACE_FORMAT_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "runtime/op.hh"

namespace hdrd::trace
{

/** Version-1 file magic: "HDRDTRC" plus the format version byte. */
constexpr std::array<char, 8> kMagicV1 = {'H', 'D', 'R', 'D',
                                          'T', 'R', 'C', '1'};

/** Current (version-2) file magic. */
constexpr std::array<char, 8> kMagic = {'H', 'D', 'R', 'D',
                                        'T', 'R', 'C', '2'};

/**
 * The version-1 header layout. Still accepted by the loader (v1
 * traces carry no run metadata, so their fault spec reads "none").
 */
struct TraceHeaderV1
{
    std::array<char, 8> magic = kMagicV1;

    /** Thread count of the recorded program. */
    std::uint32_t nthreads = 0;

    /** Total records that follow. */
    std::uint64_t record_count = 0;

    /** Program name, NUL-padded. */
    std::array<char, 64> name{};
};

static_assert(sizeof(TraceHeaderV1) == 88, "v1 layout drifted");

/**
 * Fixed-size trace header (version 2): the v1 fields plus the fault
 * profile the run was recorded under, as a canonical inline spec
 * ("none" for a clean run), so replays of faulted runs can reapply
 * the exact same signal degradation.
 */
struct TraceHeader
{
    std::array<char, 8> magic = kMagic;

    /** Thread count of the recorded program. */
    std::uint32_t nthreads = 0;

    /** Total records that follow. */
    std::uint64_t record_count = 0;

    /** Program name, NUL-padded. */
    std::array<char, 64> name{};

    /** Canonical fault spec of the recording run, NUL-padded. */
    std::array<char, 128> fault_spec{};
};

static_assert(sizeof(TraceHeader) == 216, "header layout drifted");

/** One operation record. */
struct TraceRecord
{
    /** Executing thread. */
    std::uint32_t tid = 0;

    /** runtime::OpType as a byte. */
    std::uint8_t type = 0;

    std::uint8_t pad[3] = {0, 0, 0};

    /** Op fields, verbatim. */
    std::uint64_t addr = 0;
    std::uint64_t arg = 0;
    std::uint32_t arg2 = 0;
    std::uint32_t site = 0;

    /** Convert to a runtime Op (type must be pre-validated). */
    runtime::Op toOp() const
    {
        runtime::Op op;
        op.type = static_cast<runtime::OpType>(type);
        op.addr = addr;
        op.arg = arg;
        op.arg2 = arg2;
        op.site = site;
        return op;
    }

    /** Build from a runtime Op. */
    static TraceRecord
    fromOp(ThreadId tid, const runtime::Op &op)
    {
        TraceRecord record;
        record.tid = tid;
        record.type = static_cast<std::uint8_t>(op.type);
        record.addr = op.addr;
        record.arg = op.arg;
        record.arg2 = op.arg2;
        record.site = op.site;
        return record;
    }
};

static_assert(sizeof(TraceRecord) == 32, "record layout drifted");

/** Highest valid OpType byte (for record validation). */
constexpr std::uint8_t kMaxOpType =
    static_cast<std::uint8_t>(runtime::OpType::kWrUnlock);

} // namespace hdrd::trace

#endif // HDRD_TRACE_TRACE_FORMAT_HH
