#include "pmu/faults.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hdrd::pmu
{

double
FaultStats::skidRms() const
{
    return skid_events == 0
        ? 0.0
        : std::sqrt(static_cast<double>(skid_added_sq)
                    / static_cast<double>(skid_events));
}

FaultModel::FaultModel(const FaultConfig &config, std::uint32_t ncores,
                       std::uint64_t run_seed)
    : config_(config), enabled_(config.any()),
      // Mix the fault seed into the run seed so two profiles that
      // differ only in seed= draw different streams, while the main
      // simulator Rng stream is never touched.
      rng_(run_seed * 0x2545f4914f6cdd1dULL
           + config.seed * 0x9e3779b97f4a7c15ULL + 0xfau),
      cores_(ncores)
{
}

bool
FaultModel::sampleVisible(CoreId core)
{
    if (!active())
        return true;
    ++stats_.samples_seen;
    auto &cs = cores_[core];

    // Multiplexing gates deterministically on the core's retired-op
    // clock: slice w is live iff the duty-cycle Bresenham accumulator
    // steps across it, spreading live slices evenly.
    if (config_.mux_window > 0 && config_.mux_duty < 1.0) {
        const std::uint64_t slice = cs.retired / config_.mux_window;
        const double duty = config_.mux_duty < 0.0 ? 0.0
                                                   : config_.mux_duty;
        const auto live =
            static_cast<std::uint64_t>(
                static_cast<double>(slice + 1) * duty)
            > static_cast<std::uint64_t>(static_cast<double>(slice)
                                         * duty);
        if (!live) {
            ++stats_.dropped_mux;
            return false;
        }
    }

    // Gilbert-Elliott bursty channel: while in the loss state every
    // occurrence is dropped; transitions are per-occurrence draws.
    if (config_.burst_enter > 0.0) {
        if (cs.in_burst) {
            if (rng_.nextBool(config_.burst_exit))
                cs.in_burst = false;
            else {
                ++stats_.dropped_burst;
                return false;
            }
        } else if (rng_.nextBool(config_.burst_enter)) {
            cs.in_burst = true;
            ++stats_.dropped_burst;
            return false;
        }
    }

    if (config_.drop_prob > 0.0 && rng_.nextBool(config_.drop_prob)) {
        ++stats_.dropped_iid;
        return false;
    }
    return true;
}

std::uint32_t
FaultModel::extraSkid(CoreId core)
{
    (void)core;
    if (!active() || config_.skid_jitter == 0)
        return 0;
    const auto extra = static_cast<std::uint32_t>(
        rng_.nextBounded(std::uint64_t{config_.skid_jitter} + 1));
    if (extra > 0) {
        ++stats_.skid_events;
        stats_.skid_added += extra;
        stats_.skid_added_sq +=
            std::uint64_t{extra} * std::uint64_t{extra};
    }
    return extra;
}

bool
FaultModel::allowDelivery(CoreId core)
{
    if (!active()) {
        ++stats_.delivered;
        return true;
    }
    auto &cs = cores_[core];
    const std::uint64_t now = cs.retired;

    if (config_.throttle_max > 0) {
        if (now < cs.throttled_until) {
            ++stats_.throttled;
            return false;
        }
        if (now - cs.window_start >= config_.throttle_window) {
            cs.window_start = now;
            cs.window_deliveries = 0;
        }
        if (cs.window_deliveries >= config_.throttle_max) {
            cs.throttled_until = now + config_.throttle_backoff;
            cs.window_deliveries = 0;
            cs.window_start = now + config_.throttle_backoff;
            ++stats_.throttle_trips;
            ++stats_.throttled;
            return false;
        }
    }

    if (config_.coalesce_window > 0 && cs.has_delivery
        && now - cs.last_delivery <= config_.coalesce_window) {
        ++stats_.coalesced;
        return false;
    }

    cs.last_delivery = now;
    cs.has_delivery = true;
    if (config_.throttle_max > 0)
        ++cs.window_deliveries;
    ++stats_.delivered;
    return true;
}

Addr
FaultModel::filterAddr(CoreId core, Addr addr)
{
    (void)core;
    if (!active() || config_.addr_corrupt_prob <= 0.0
        || addr == kInvalidAddr)
        return addr;
    if (!rng_.nextBool(config_.addr_corrupt_prob))
        return addr;
    ++stats_.corrupted_addrs;
    // Flip a handful of low/mid address bits: the corrupted address
    // stays plausible (nearby) but names the wrong granule.
    const std::uint64_t noise = rng_.next64() & 0xffffu;
    return (addr ^ (noise << 3)) & ~std::uint64_t{7};
}

namespace
{

struct NamedProfile
{
    const char *name;
    const char *spec;
};

/**
 * The canned profiles. Magnitudes chosen so "mild" barely moves the
 * recall needle, "storm" reliably trips the failsafe thresholds.
 */
const NamedProfile kProfiles[] = {
    {"none", ""},
    {"mild", "drop=0.1,skid=8"},
    {"lossy", "drop=0.5,skid=16,coalesce=32"},
    {"bursty", "burst-enter=0.05,burst-exit=0.1,skid=8"},
    {"skidstorm", "skid=128,coalesce=64"},
    {"throttle",
     "throttle-max=4,throttle-window=2000,throttle-backoff=20000,"
     "skid=16"},
    {"storm",
     "drop=0.6,burst-enter=0.1,burst-exit=0.05,skid=64,coalesce=64,"
     "throttle-max=8,throttle-window=4000,throttle-backoff=30000,"
     "addr-corrupt=0.2"},
};

bool
parseDoubleField(const std::string &val, double lo, double hi,
                 double &out, std::string &err,
                 const std::string &key)
{
    char *end = nullptr;
    const double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0' || std::isnan(v)) {
        err = "fault spec: bad number for '" + key + "': " + val;
        return false;
    }
    if (v < lo || v > hi) {
        err = "fault spec: '" + key + "' out of range [" +
              std::to_string(lo) + ", " + std::to_string(hi) +
              "]: " + val;
        return false;
    }
    out = v;
    return true;
}

bool
parseU64Field(const std::string &val, std::uint64_t &out,
              std::string &err, const std::string &key)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(val.c_str(), &end, 10);
    if (end == val.c_str() || *end != '\0'
        || val.find('-') != std::string::npos) {
        err = "fault spec: bad integer for '" + key + "': " + val;
        return false;
    }
    out = v;
    return true;
}

bool
parseU32Field(const std::string &val, std::uint32_t &out,
              std::string &err, const std::string &key)
{
    std::uint64_t wide = 0;
    if (!parseU64Field(val, wide, err, key))
        return false;
    if (wide > 0xffffffffULL) {
        err = "fault spec: '" + key + "' too large: " + val;
        return false;
    }
    out = static_cast<std::uint32_t>(wide);
    return true;
}

bool
applyKeyValue(const std::string &key, const std::string &val,
              FaultConfig &out, std::string &err)
{
    if (key == "drop")
        return parseDoubleField(val, 0.0, 1.0, out.drop_prob, err,
                                key);
    if (key == "burst-enter")
        return parseDoubleField(val, 0.0, 1.0, out.burst_enter, err,
                                key);
    if (key == "burst-exit")
        return parseDoubleField(val, 0.0, 1.0, out.burst_exit, err,
                                key);
    if (key == "skid")
        return parseU32Field(val, out.skid_jitter, err, key);
    if (key == "coalesce")
        return parseU32Field(val, out.coalesce_window, err, key);
    if (key == "throttle-max")
        return parseU32Field(val, out.throttle_max, err, key);
    if (key == "throttle-window")
        return parseU64Field(val, out.throttle_window, err, key);
    if (key == "throttle-backoff")
        return parseU64Field(val, out.throttle_backoff, err, key);
    if (key == "mux-duty")
        return parseDoubleField(val, 0.0, 1.0, out.mux_duty, err,
                                key);
    if (key == "mux-window")
        return parseU64Field(val, out.mux_window, err, key);
    if (key == "addr-corrupt")
        return parseDoubleField(val, 0.0, 1.0, out.addr_corrupt_prob,
                                err, key);
    if (key == "active-ops")
        return parseU64Field(val, out.active_ops, err, key);
    if (key == "seed")
        return parseU64Field(val, out.seed, err, key);
    err = "fault spec: unknown key '" + key + "'";
    return false;
}

bool
parseInlineSpec(const std::string &spec, FaultConfig &out,
                std::string &err)
{
    std::string token;
    std::istringstream is(spec);
    // Accept both comma- and whitespace-separated key=value pairs.
    while (std::getline(is, token, ',')) {
        std::istringstream ts(token);
        std::string pair;
        while (ts >> pair) {
            const auto eq = pair.find('=');
            if (eq == std::string::npos || eq == 0) {
                err = "fault spec: expected key=value, got '" + pair +
                      "'";
                return false;
            }
            if (!applyKeyValue(pair.substr(0, eq),
                               pair.substr(eq + 1), out, err))
                return false;
        }
    }
    return true;
}

bool
parseProfileFile(const std::string &path, FaultConfig &out,
                 std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "fault spec: cannot open profile file: " + path;
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        // Each non-comment line is an inline spec fragment.
        bool blank = true;
        for (const char c : line)
            if (!std::isspace(static_cast<unsigned char>(c)))
                blank = false;
        if (blank)
            continue;
        if (!parseInlineSpec(line, out, err))
            return false;
    }
    return true;
}

} // namespace

const std::vector<std::string> &
faultProfileNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &p : kProfiles)
            v.emplace_back(p.name);
        return v;
    }();
    return names;
}

bool
applyFaultSpec(const std::string &fragment, FaultConfig &config,
               std::string &err)
{
    err.clear();
    return parseInlineSpec(fragment, config, err);
}

bool
resolveFaultSpec(const std::string &spec, FaultConfig &out,
                 std::string &err)
{
    out = FaultConfig{};
    err.clear();
    if (spec.empty())
        return true;

    for (const auto &p : kProfiles) {
        if (spec == p.name)
            return parseInlineSpec(p.spec, out, err);
    }

    // A path-looking spec (contains '/' or ends in .prof) is a file;
    // everything else must parse as inline key=value pairs.
    if (spec.find('/') != std::string::npos
        || (spec.size() > 5
            && spec.compare(spec.size() - 5, 5, ".prof") == 0))
        return parseProfileFile(spec, out, err);

    return parseInlineSpec(spec, out, err);
}

std::string
faultSpec(const FaultConfig &config)
{
    if (!config.any())
        return "none";
    std::ostringstream os;
    const char *sep = "";
    const auto emitU = [&](const char *key, std::uint64_t v) {
        os << sep << key << '=' << v;
        sep = ",";
    };
    const auto emitD = [&](const char *key, double v) {
        os << sep << key << '=' << v;
        sep = ",";
    };
    if (config.drop_prob > 0.0)
        emitD("drop", config.drop_prob);
    if (config.burst_enter > 0.0) {
        emitD("burst-enter", config.burst_enter);
        emitD("burst-exit", config.burst_exit);
    }
    if (config.skid_jitter > 0)
        emitU("skid", config.skid_jitter);
    if (config.coalesce_window > 0)
        emitU("coalesce", config.coalesce_window);
    if (config.throttle_max > 0) {
        emitU("throttle-max", config.throttle_max);
        emitU("throttle-window", config.throttle_window);
        emitU("throttle-backoff", config.throttle_backoff);
    }
    if (config.mux_window > 0 && config.mux_duty < 1.0) {
        emitD("mux-duty", config.mux_duty);
        emitU("mux-window", config.mux_window);
    }
    if (config.addr_corrupt_prob > 0.0)
        emitD("addr-corrupt", config.addr_corrupt_prob);
    if (config.active_ops > 0)
        emitU("active-ops", config.active_ops);
    if (config.seed > 0)
        emitU("seed", config.seed);
    return os.str();
}

} // namespace hdrd::pmu
