/**
 * @file
 * Fault injection for the modelled hardware signal path.
 *
 * The paper's hardware sharing indicator is *lossy by design*: the
 * HITM event only sees W->R sharing, modified lines evicted before
 * consumption never notify, the sampling counter skips events, the
 * interrupt lands several instructions late, and the kernel throttles
 * interrupt storms. Our base PMU model is too clean to reproduce the
 * paper's accuracy-vs-overhead trade-off, so this layer degrades the
 * signal on purpose — deterministically, from a seed — between the
 * memory hierarchy's event stream and the pmu::Pmu counters.
 *
 * Fault taxonomy (see docs/FAULTS.md for the mapping onto the paper's
 * accuracy-loss causes):
 *  - iid sample loss:       each armed-event occurrence is invisible
 *                           to the sampling counter with probability
 *                           drop_prob (eviction-before-notification).
 *  - bursty loss:           a two-state Gilbert-Elliott channel; in
 *                           the loss state every occurrence is
 *                           dropped (DMA phases, ring-buffer stalls).
 *  - skid jitter:           an overflow's delivery slips a further
 *                           uniform [0, skid_jitter] retired ops,
 *                           so the interrupt is attributed later
 *                           (and possibly to the wrong thread).
 *  - coalescing:            an overflow delivered within
 *                           coalesce_window retired ops of the
 *                           previous delivery on that core is merged
 *                           into it (back-to-back PMIs collapse).
 *  - throttling:            kernel-style max-interrupt-rate backoff;
 *                           more than throttle_max deliveries inside
 *                           throttle_window retired ops silences the
 *                           core for throttle_backoff retired ops.
 *  - multiplexing:          the event is only counted during a
 *                           mux_duty fraction of mux_window slices
 *                           (counter shared with other events).
 *  - address corruption:    the sampled (PEBS) data address is
 *                           replaced with a nearby-garbage address
 *                           with probability addr_corrupt_prob.
 *
 * All randomness comes from a private Rng seeded from (run seed,
 * fault seed), so a fixed (seed, profile) pair replays exactly; with
 * every knob at its default the model is pass-through and the
 * simulator's behaviour is byte-identical to a build without it.
 */

#ifndef HDRD_PMU_FAULTS_HH
#define HDRD_PMU_FAULTS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace hdrd::pmu
{

/** Every knob of the fault model; defaults are all pass-through. */
struct FaultConfig
{
    /** Per-occurrence iid probability the sampler misses the event. */
    double drop_prob = 0.0;

    /** Per-occurrence probability of entering the bursty-loss state. */
    double burst_enter = 0.0;

    /** Per-occurrence probability of leaving the bursty-loss state. */
    double burst_exit = 0.25;

    /** Extra delivery skid: uniform [0, skid_jitter] retired ops. */
    std::uint32_t skid_jitter = 0;

    /**
     * Deliveries within this many retired ops of the previous
     * delivery on the same core are coalesced away (0 = off).
     */
    std::uint32_t coalesce_window = 0;

    /** Max deliveries per throttle_window before tripping (0 = off). */
    std::uint32_t throttle_max = 0;

    /** Throttle accounting window in retired ops. */
    std::uint64_t throttle_window = 10000;

    /** Retired ops a tripped core stays silenced. */
    std::uint64_t throttle_backoff = 50000;

    /** Fraction of multiplex slices the event is live (1 = always). */
    double mux_duty = 1.0;

    /** Multiplex slice length in retired ops (0 = no multiplexing). */
    std::uint64_t mux_window = 0;

    /** Probability a latched sample address is corrupted. */
    double addr_corrupt_prob = 0.0;

    /**
     * Faults apply only to the first active_ops retired ops summed
     * over all cores (0 = the whole run). Models a transient storm
     * and lets tests drive failsafe de-escalation.
     */
    std::uint64_t active_ops = 0;

    /** Extra entropy folded into the fault Rng (with the run seed). */
    std::uint64_t seed = 0;

    /** True when any knob departs from pass-through. */
    bool any() const
    {
        return drop_prob > 0.0 || burst_enter > 0.0
            || skid_jitter > 0 || coalesce_window > 0
            || throttle_max > 0
            || (mux_window > 0 && mux_duty < 1.0)
            || addr_corrupt_prob > 0.0;
    }
};

/** Signal-degradation accounting (per run). */
struct FaultStats
{
    /** Armed-event occurrences offered to the fault layer. */
    std::uint64_t samples_seen = 0;

    std::uint64_t dropped_iid = 0;
    std::uint64_t dropped_burst = 0;
    std::uint64_t dropped_mux = 0;

    /** Samples whose skid was extended, and total ops added. */
    std::uint64_t skid_events = 0;
    std::uint64_t skid_added = 0;

    /** Sum of squared per-sample extra skid (for RMS/variance). */
    std::uint64_t skid_added_sq = 0;

    /** Deliveries merged into a recent predecessor. */
    std::uint64_t coalesced = 0;

    /** Deliveries suppressed while a core was throttled. */
    std::uint64_t throttled = 0;

    /** Times a core's delivery rate tripped the throttle. */
    std::uint64_t throttle_trips = 0;

    /** PEBS addresses corrupted before the latch. */
    std::uint64_t corrupted_addrs = 0;

    /** Deliveries that passed every delivery-side fault. */
    std::uint64_t delivered = 0;

    /** All sample-side losses. */
    std::uint64_t dropped() const
    {
        return dropped_iid + dropped_burst + dropped_mux;
    }

    /** Fraction of offered samples lost on the sample side. */
    double dropRatio() const
    {
        return samples_seen == 0
            ? 0.0
            : static_cast<double>(dropped())
                / static_cast<double>(samples_seen);
    }

    /** RMS of the extra skid over samples that received any. */
    double skidRms() const;
};

/**
 * The seeded fault interposer. The simulator consults it at three
 * points of the signal path:
 *
 *   hierarchy event --sampleVisible()--> sampling counter
 *   threshold cross --extraSkid()------> skid window
 *   skid exhausted  --allowDelivery()--> overflow handler
 *
 * plus filterAddr() when latching a PEBS record, and onRetire() once
 * per retired op to advance the windows. Everything is deterministic
 * given (config, ncores, run seed) and the call sequence.
 */
class FaultModel
{
  public:
    FaultModel(const FaultConfig &config, std::uint32_t ncores,
               std::uint64_t run_seed);

    /** True when any fault is configured. */
    bool enabled() const { return enabled_; }

    /** Advance one retired op on @p core. */
    void onRetire(CoreId core)
    {
        ++cores_[core].retired;
        ++total_retired_;
    }

    /**
     * An armed-event occurrence on @p core.
     * @return true when the sampling counter may see it.
     */
    bool sampleVisible(CoreId core);

    /** Extra skid for a sample that just crossed its threshold. */
    std::uint32_t extraSkid(CoreId core);

    /**
     * An overflow finished its skid on @p core.
     * @return true when the interrupt may be delivered.
     */
    bool allowDelivery(CoreId core);

    /** Possibly corrupt a PEBS address before it is latched. */
    Addr filterAddr(CoreId core, Addr addr);

    /** Accounting so far. */
    const FaultStats &stats() const { return stats_; }

    const FaultConfig &config() const { return config_; }

  private:
    /** Faults currently apply (active_ops window not yet expired). */
    bool active() const
    {
        return enabled_
            && (config_.active_ops == 0
                || total_retired_ < config_.active_ops);
    }

    struct CoreFaultState
    {
        /** Retired ops on this core (fault-model clock). */
        std::uint64_t retired = 0;

        /** Bursty-loss channel state. */
        bool in_burst = false;

        /** Last allowed delivery, for coalescing. */
        std::uint64_t last_delivery = 0;
        bool has_delivery = false;

        /** Throttle window bookkeeping. */
        std::uint64_t window_start = 0;
        std::uint32_t window_deliveries = 0;
        std::uint64_t throttled_until = 0;
    };

    FaultConfig config_;
    bool enabled_ = false;
    Rng rng_;
    std::vector<CoreFaultState> cores_;
    std::uint64_t total_retired_ = 0;
    FaultStats stats_;
};

/** Names of the built-in fault profiles ("none" first). */
const std::vector<std::string> &faultProfileNames();

/**
 * Resolve @p spec into a config. @p spec may be:
 *  - a built-in profile name ("none", "mild", "lossy", "bursty",
 *    "skidstorm", "throttle", "storm");
 *  - a path to a profile file (key=value lines, '#' comments);
 *  - an inline comma- or space-separated key=value list
 *    ("drop=0.3,skid=16").
 * Keys: drop, burst-enter, burst-exit, skid, coalesce, throttle-max,
 * throttle-window, throttle-backoff, mux-duty, mux-window,
 * addr-corrupt, active-ops, seed.
 * @return false (with @p err set) on any unknown key, malformed
 *         value, or out-of-range number.
 */
bool resolveFaultSpec(const std::string &spec, FaultConfig &out,
                      std::string &err);

/**
 * Apply one inline key=value fragment on top of @p config without
 * resetting it first (CLI --fault-* overrides layered over a
 * --faults= profile).
 */
bool applyFaultSpec(const std::string &fragment, FaultConfig &config,
                    std::string &err);

/**
 * Canonical inline spec for @p config ("none" when pass-through).
 * Round-trips through resolveFaultSpec().
 */
std::string faultSpec(const FaultConfig &config);

} // namespace hdrd::pmu

#endif // HDRD_PMU_FAULTS_HH
