/**
 * @file
 * The chip-level performance monitoring unit model.
 *
 * Every core gets (a) a bank of free-running counters, one per
 * EventType, always counting, and (b) one sampling counter that can be
 * armed on any event with a sample-after value and skid. Overflow
 * interrupts are delivered to a registered handler — in the paper's
 * system that handler is the demand-driven controller's "turn the race
 * detector on" path.
 */

#ifndef HDRD_PMU_PMU_HH
#define HDRD_PMU_PMU_HH

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "pmu/counter.hh"
#include "pmu/event.hh"
#include "pmu/faults.hh"

namespace hdrd::pmu
{

/** Callback invoked when a core's sampling counter overflows. */
using OverflowHandler = std::function<void(CoreId, EventType)>;

/**
 * Chip-level PMU: per-core free-running counters plus one sampling
 * counter per core.
 */
class Pmu
{
  public:
    explicit Pmu(std::uint32_t ncores);

    /** Number of cores. */
    std::uint32_t ncores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    /** Register the overflow interrupt handler (single consumer). */
    void setOverflowHandler(OverflowHandler handler);

    /** Arm every core's sampling counter with @p config. */
    void armAll(const CounterConfig &config);

    /** Arm one core's sampling counter. */
    void arm(CoreId core, const CounterConfig &config);

    /** Disarm every core's sampling counter. */
    void disarmAll();

    /** Disarm one core's sampling counter. */
    void disarm(CoreId core);

    /** True when @p core's sampling counter is armed. */
    bool armed(CoreId core) const;

    /**
     * Record @p n occurrences of @p event on @p core. Free-running
     * counters always advance; the sampling counter advances when
     * armed on this event.
     * @return true when this occurrence was *sampled* — it crossed
     *         the sampling counter's threshold and latched (the event
     *         a PEBS record would describe).
     */
    bool recordEvent(CoreId core, EventType event, std::uint64_t n = 1)
    {
        hdrdAssert(core < cores_.size(), "unknown core ", core);
        CoreState &state = cores_[core];
        state.counts[static_cast<std::size_t>(event)] += n;
        if (state.sampler.armed()
            && state.sampler.config().event == event) {
            return state.sampler.count(n);
        }
        return false;
    }

    /**
     * Record one memory access's entire event set in a single call:
     * every event in @p mask advances its free-running counter by one,
     * except kInvalidationsSent which advances by @p invalidations.
     * The sampling counter advances when armed on an event in the
     * mask. Equivalent to one recordEvent per set bit, in any order
     * (at most one event can be armed per core).
     *
     * When @p faults is non-null, armed-event occurrences pass through
     * the fault model's sample-loss filter before reaching the
     * sampling counter, and a crossing's skid window is extended by
     * the model's jitter. Free-running counts are never faulted.
     *
     * @return true when a HITM-family event (kHitmLoad / kHitmAny)
     *         was sampled — crossed the armed counter's threshold and
     *         latched, as the demand controller's PEBS record.
     */
    bool recordAccess(CoreId core, EventMask mask,
                      std::uint32_t invalidations,
                      FaultModel *faults = nullptr)
    {
        hdrdAssert(core < cores_.size(), "unknown core ", core);
        CoreState &state = cores_[core];
        std::uint64_t *counts = state.counts.data();

        constexpr EventMask inval_bit =
            eventBit(EventType::kInvalidationsSent);
        for (EventMask rest = mask; rest != 0; rest &= rest - 1) {
            const auto e =
                static_cast<std::uint32_t>(std::countr_zero(rest));
            counts[e] += (EventMask{1} << e) == inval_bit
                ? invalidations
                : 1;
        }

        if (state.sampler.armed()) {
            const EventType armed_event = state.sampler.config().event;
            const EventMask armed_bit = eventBit(armed_event);
            if ((mask & armed_bit) != 0) {
                if (faults != nullptr
                    && !faults->sampleVisible(core)) {
                    return false;
                }
                const std::uint64_t n = armed_bit == inval_bit
                    ? invalidations
                    : 1;
                const bool crossed = state.sampler.count(n);
                if (crossed && faults != nullptr)
                    state.sampler.addSkid(faults->extraSkid(core));
                return crossed
                    && (armed_event == EventType::kHitmLoad
                        || armed_event == EventType::kHitmAny);
            }
        }
        return false;
    }

    /**
     * Retire one operation on @p core: advances skid windows and
     * delivers any due overflow interrupt (synchronously, through the
     * registered handler).
     *
     * When @p faults is non-null, the fault model's per-core clock
     * advances and a due overflow must pass its delivery-side gates
     * (coalescing, throttling) — a suppressed overflow is counted in
     * interruptsSuppressed() and never reaches the handler.
     *
     * @return true when an interrupt was delivered.
     */
    bool retireOp(CoreId core, FaultModel *faults = nullptr)
    {
        hdrdAssert(core < cores_.size(), "unknown core ", core);
        CoreState &state = cores_[core];
        if (faults != nullptr)
            faults->onRetire(core);
        state.counts[static_cast<std::size_t>(
            EventType::kRetiredOps)] += 1;
        if (state.sampler.armed()
            && state.sampler.config().event
                   == EventType::kRetiredOps) {
            state.sampler.count(1);
        }
        if (!state.sampler.retire())
            return false;
        if (faults != nullptr && !faults->allowDelivery(core)) {
            ++suppressed_;
            return false;
        }
        ++interrupts_;
        if (handler_)
            handler_(core, state.sampler.config().event);
        return true;
    }

    /** Free-running count of @p event on @p core. */
    std::uint64_t count(CoreId core, EventType event) const;

    /** Free-running count of @p event summed over all cores. */
    std::uint64_t totalCount(EventType event) const;

    /** Total overflow interrupts delivered. */
    std::uint64_t interruptsDelivered() const { return interrupts_; }

    /** Overflows suppressed by the fault model's delivery gates. */
    std::uint64_t interruptsSuppressed() const { return suppressed_; }

    /** Zero the free-running counters (sampling state untouched). */
    void resetCounts();

  private:
    struct CoreState
    {
        std::array<std::uint64_t, kNumEventTypes> counts{};
        SamplingCounter sampler;
    };

    std::vector<CoreState> cores_;
    OverflowHandler handler_;
    std::uint64_t interrupts_ = 0;
    std::uint64_t suppressed_ = 0;
};

} // namespace hdrd::pmu

#endif // HDRD_PMU_PMU_HH
