/**
 * @file
 * The chip-level performance monitoring unit model.
 *
 * Every core gets (a) a bank of free-running counters, one per
 * EventType, always counting, and (b) one sampling counter that can be
 * armed on any event with a sample-after value and skid. Overflow
 * interrupts are delivered to a registered handler — in the paper's
 * system that handler is the demand-driven controller's "turn the race
 * detector on" path.
 */

#ifndef HDRD_PMU_PMU_HH
#define HDRD_PMU_PMU_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "pmu/counter.hh"
#include "pmu/event.hh"

namespace hdrd::pmu
{

/** Callback invoked when a core's sampling counter overflows. */
using OverflowHandler = std::function<void(CoreId, EventType)>;

/**
 * Chip-level PMU: per-core free-running counters plus one sampling
 * counter per core.
 */
class Pmu
{
  public:
    explicit Pmu(std::uint32_t ncores);

    /** Number of cores. */
    std::uint32_t ncores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    /** Register the overflow interrupt handler (single consumer). */
    void setOverflowHandler(OverflowHandler handler);

    /** Arm every core's sampling counter with @p config. */
    void armAll(const CounterConfig &config);

    /** Arm one core's sampling counter. */
    void arm(CoreId core, const CounterConfig &config);

    /** Disarm every core's sampling counter. */
    void disarmAll();

    /** Disarm one core's sampling counter. */
    void disarm(CoreId core);

    /** True when @p core's sampling counter is armed. */
    bool armed(CoreId core) const;

    /**
     * Record @p n occurrences of @p event on @p core. Free-running
     * counters always advance; the sampling counter advances when
     * armed on this event.
     * @return true when this occurrence was *sampled* — it crossed
     *         the sampling counter's threshold and latched (the event
     *         a PEBS record would describe).
     */
    bool recordEvent(CoreId core, EventType event, std::uint64_t n = 1);

    /**
     * Retire one operation on @p core: advances skid windows and
     * delivers any due overflow interrupt (synchronously, through the
     * registered handler).
     * @return true when an interrupt was delivered.
     */
    bool retireOp(CoreId core);

    /** Free-running count of @p event on @p core. */
    std::uint64_t count(CoreId core, EventType event) const;

    /** Free-running count of @p event summed over all cores. */
    std::uint64_t totalCount(EventType event) const;

    /** Total overflow interrupts delivered. */
    std::uint64_t interruptsDelivered() const { return interrupts_; }

    /** Zero the free-running counters (sampling state untouched). */
    void resetCounts();

  private:
    struct CoreState
    {
        std::array<std::uint64_t, kNumEventTypes> counts{};
        SamplingCounter sampler;
    };

    std::vector<CoreState> cores_;
    OverflowHandler handler_;
    std::uint64_t interrupts_ = 0;
};

} // namespace hdrd::pmu

#endif // HDRD_PMU_PMU_HH
