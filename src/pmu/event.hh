/**
 * @file
 * Hardware performance event types exposed by the modelled PMU.
 */

#ifndef HDRD_PMU_EVENT_HH
#define HDRD_PMU_EVENT_HH

#include <cstdint>

namespace hdrd::pmu
{

/**
 * Events the modelled PMU can count or sample.
 *
 * kHitmLoad is the event the paper builds on: retired loads serviced
 * by another core's Modified cache line (Nehalem's
 * MEM_UNCORE_RETIRED.OTHER_CORE_L2_HITM, a PEBS-capable precise
 * event). Stores that hit remote-Modified lines are intentionally NOT
 * an event — mirroring real hardware's load-only visibility, the root
 * of the paper's W->R-only sharing indicator.
 */
enum class EventType : std::uint8_t
{
    kRetiredOps = 0,   ///< all retired simulated operations
    kLoads,            ///< retired loads
    kStores,           ///< retired stores
    kL1Miss,           ///< demand accesses missing private L1
    kL2Miss,           ///< demand accesses missing the private hierarchy
    kL3Miss,           ///< demand accesses serviced by memory
    kHitmLoad,         ///< loads hitting a remote Modified line (PEBS)
    kHitmAny,          ///< any access hitting a remote Modified line
                       ///< (hypothetical hardware; see ABL-5)
    kInvalidationsSent,///< remote copies invalidated by stores/upgrades
    kSyncOps,          ///< synchronization operations retired

    kNumEvents,
};

/** Number of distinct event types. */
constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(EventType::kNumEvents);

/**
 * A set of events fired by one retired operation, as a bitmask.
 * Lets the access path hand the PMU its whole event set in one call.
 */
using EventMask = std::uint32_t;

/** Mask bit for @p event. */
constexpr EventMask
eventBit(EventType event)
{
    return EventMask{1} << static_cast<std::uint32_t>(event);
}

/** Printable name for an event type. */
const char *eventName(EventType event);

} // namespace hdrd::pmu

#endif // HDRD_PMU_EVENT_HH
