#include "pmu/counter.hh"

#include "common/logging.hh"

namespace hdrd::pmu
{

const char *
eventName(EventType event)
{
    switch (event) {
      case EventType::kRetiredOps:
        return "retired_ops";
      case EventType::kLoads:
        return "loads";
      case EventType::kStores:
        return "stores";
      case EventType::kL1Miss:
        return "l1_miss";
      case EventType::kL2Miss:
        return "l2_miss";
      case EventType::kL3Miss:
        return "l3_miss";
      case EventType::kHitmLoad:
        return "hitm_load";
      case EventType::kHitmAny:
        return "hitm_any";
      case EventType::kInvalidationsSent:
        return "invalidations_sent";
      case EventType::kSyncOps:
        return "sync_ops";
      case EventType::kNumEvents:
        break;
    }
    return "?";
}

void
SamplingCounter::arm(const CounterConfig &config)
{
    hdrdAssert(config.sample_after > 0,
               "sample_after must be positive");
    config_ = config;
    armed_ = true;
    skidding_ = false;
    events_ = 0;
    skid_left_ = 0;
}

void
SamplingCounter::disarm()
{
    armed_ = false;
    skidding_ = false;
    events_ = 0;
    skid_left_ = 0;
}

bool
SamplingCounter::count(std::uint64_t n)
{
    if (!armed_ || skidding_)
        return false;
    events_ += n;
    if (events_ < config_.sample_after)
        return false;
    // Threshold crossed: start the skid window.
    skidding_ = true;
    skid_left_ = config_.skid;
    events_ = 0;
    return true;
}

bool
SamplingCounter::retire()
{
    if (!armed_ || !skidding_)
        return false;
    if (skid_left_ > 0) {
        --skid_left_;
        return false;
    }
    // Skid exhausted: deliver.
    skidding_ = false;
    if (!config_.auto_rearm)
        armed_ = false;
    return true;
}

} // namespace hdrd::pmu
