#include "pmu/counter.hh"

#include "common/logging.hh"

namespace hdrd::pmu
{

const char *
eventName(EventType event)
{
    switch (event) {
      case EventType::kRetiredOps:
        return "retired_ops";
      case EventType::kLoads:
        return "loads";
      case EventType::kStores:
        return "stores";
      case EventType::kL1Miss:
        return "l1_miss";
      case EventType::kL2Miss:
        return "l2_miss";
      case EventType::kL3Miss:
        return "l3_miss";
      case EventType::kHitmLoad:
        return "hitm_load";
      case EventType::kHitmAny:
        return "hitm_any";
      case EventType::kInvalidationsSent:
        return "invalidations_sent";
      case EventType::kSyncOps:
        return "sync_ops";
      case EventType::kNumEvents:
        break;
    }
    return "?";
}

void
SamplingCounter::arm(const CounterConfig &config)
{
    hdrdAssert(config.sample_after > 0,
               "sample_after must be positive");
    config_ = config;
    armed_ = true;
    skidding_ = false;
    events_ = 0;
    skid_left_ = 0;
}

void
SamplingCounter::disarm()
{
    armed_ = false;
    skidding_ = false;
    events_ = 0;
    skid_left_ = 0;
}

} // namespace hdrd::pmu
