/**
 * @file
 * A single sampling hardware counter with sample-after value and skid.
 */

#ifndef HDRD_PMU_COUNTER_HH
#define HDRD_PMU_COUNTER_HH

#include <cstdint>

#include "common/types.hh"
#include "pmu/event.hh"

namespace hdrd::pmu
{

/** Configuration of a sampling counter. */
struct CounterConfig
{
    /** Event to sample on. */
    EventType event = EventType::kHitmLoad;

    /**
     * Sample-after value: the counter overflows after this many
     * events. 1 means "interrupt on every event" — the paper's
     * highest-accuracy setting; larger values trade accuracy for
     * fewer interrupts.
     */
    std::uint64_t sample_after = 1;

    /**
     * Interrupt skid: the overflow is delivered this many retired
     * operations after the triggering event, modelling the imprecise
     * landing point of real PMIs (PEBS shrinks but does not eliminate
     * skid for the enable decision).
     */
    std::uint32_t skid = 4;

    /** Re-arm automatically after delivering an overflow. */
    bool auto_rearm = true;
};

/**
 * One per-core sampling counter.
 *
 * Lifecycle: disarmed -> armed -> (threshold reached) skidding ->
 * overflow delivered -> armed again (auto_rearm) or disarmed.
 */
class SamplingCounter
{
  public:
    SamplingCounter() = default;

    /** Arm with @p config; resets progress. */
    void arm(const CounterConfig &config);

    /** Disarm; pending overflows are dropped. */
    void disarm();

    /** True when armed (including while skidding). */
    bool armed() const { return armed_; }

    /** Configuration of the last arm() call. */
    const CounterConfig &config() const { return config_; }

    /**
     * Record @p n occurrences of the armed event.
     * @return true when the counter just crossed its threshold and
     *         entered the skid window.
     */
    bool count(std::uint64_t n = 1)
    {
        if (!armed_ || skidding_)
            return false;
        events_ += n;
        if (events_ < config_.sample_after)
            return false;
        // Threshold crossed: start the skid window.
        skidding_ = true;
        skid_left_ = config_.skid;
        events_ = 0;
        return true;
    }

    /**
     * Extend a pending overflow's skid window by @p n retired ops
     * (fault-injected skid jitter). No effect unless skidding.
     */
    void addSkid(std::uint32_t n)
    {
        if (armed_ && skidding_)
            skid_left_ += n;
    }

    /**
     * Advance one retired operation.
     * @return true when a pending overflow finished its skid and the
     *         interrupt should be delivered now.
     */
    bool retire()
    {
        if (!armed_ || !skidding_)
            return false;
        if (skid_left_ > 0) {
            --skid_left_;
            return false;
        }
        // Skid exhausted: deliver.
        skidding_ = false;
        if (!config_.auto_rearm)
            armed_ = false;
        return true;
    }

  private:
    CounterConfig config_;
    bool armed_ = false;
    bool skidding_ = false;
    std::uint64_t events_ = 0;
    std::uint32_t skid_left_ = 0;
};

} // namespace hdrd::pmu

#endif // HDRD_PMU_COUNTER_HH
