#include "pmu/pmu.hh"

#include <bit>

#include "common/logging.hh"

namespace hdrd::pmu
{

Pmu::Pmu(std::uint32_t ncores) : cores_(ncores)
{
    hdrdAssert(ncores > 0, "Pmu needs at least one core");
}

void
Pmu::setOverflowHandler(OverflowHandler handler)
{
    handler_ = std::move(handler);
}

void
Pmu::armAll(const CounterConfig &config)
{
    for (auto &core : cores_)
        core.sampler.arm(config);
}

void
Pmu::arm(CoreId core, const CounterConfig &config)
{
    hdrdAssert(core < cores_.size(), "unknown core ", core);
    cores_[core].sampler.arm(config);
}

void
Pmu::disarmAll()
{
    for (auto &core : cores_)
        core.sampler.disarm();
}

void
Pmu::disarm(CoreId core)
{
    hdrdAssert(core < cores_.size(), "unknown core ", core);
    cores_[core].sampler.disarm();
}

bool
Pmu::armed(CoreId core) const
{
    hdrdAssert(core < cores_.size(), "unknown core ", core);
    return cores_[core].sampler.armed();
}

std::uint64_t
Pmu::count(CoreId core, EventType event) const
{
    hdrdAssert(core < cores_.size(), "unknown core ", core);
    return cores_[core].counts[static_cast<std::size_t>(event)];
}

std::uint64_t
Pmu::totalCount(EventType event) const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core.counts[static_cast<std::size_t>(event)];
    return total;
}

void
Pmu::resetCounts()
{
    for (auto &core : cores_)
        core.counts.fill(0);
}

} // namespace hdrd::pmu
