#include "stream/stream_session.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "runtime/program.hh"
#include "service/metrics.hh"
#include "service/report_json.hh"
#include "trace/trace_format.hh"

namespace hdrd::stream
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Record-decode batch size for the ingest drain. */
constexpr std::size_t kBatch = 256;

/** Flush the buffered-bytes gauge after this much consumption. */
constexpr std::int64_t kGaugeFlush = 64 * 1024;

} // namespace

std::size_t
StreamSession::BufSource::read(char *dst, std::size_t n)
{
    StreamSession &s = session_;
    n = std::min(n, s.buf_.size() - s.buf_pos_);
    if (n == 0)
        return 0;
    std::memcpy(dst, s.buf_.data() + s.buf_pos_, n);
    s.buf_pos_ += n;
    if (s.buf_pos_ == s.buf_.size()) {
        s.buf_.clear();
        s.buf_pos_ = 0;
    } else if (s.buf_pos_ >= 256 * 1024
               && s.buf_pos_ >= s.buf_.size() / 2) {
        s.buf_.erase(0, s.buf_pos_);
        s.buf_pos_ = 0;
    }
    consumed_ += n;
    return n;
}

/**
 * The session's face to the simulator: per-thread bodies that block
 * inside next() until ingestion catches up. nextIsPure() is false so
 * the simulator never prefetches — a body must only block when the
 * scheduler genuinely needs its thread's next operation.
 */
class StreamSession::EngineBody : public runtime::ThreadBody
{
  public:
    EngineBody(StreamSession &session, ThreadId tid)
        : session_(session), tid_(tid)
    {
    }

    bool next(runtime::Op &op) override
    {
        return session_.popOp(tid_, op);
    }

    bool nextIsPure() const override { return false; }

  private:
    StreamSession &session_;
    ThreadId tid_;
};

class StreamSession::EngineProgram : public runtime::Program
{
  public:
    explicit EngineProgram(StreamSession &session)
        : session_(session)
    {
    }

    const std::string &name() const override
    {
        return session_.trace_name_;
    }

    std::uint32_t numThreads() const override
    {
        return session_.nthreads_;
    }

    std::unique_ptr<runtime::ThreadBody>
    makeThread(ThreadId tid) override
    {
        return std::make_unique<EngineBody>(session_, tid);
    }

  private:
    StreamSession &session_;
};

StreamSession::StreamSession(StreamConfig config,
                             StreamCallbacks callbacks)
    : config_(std::move(config)), callbacks_(std::move(callbacks))
{
    hdrdAssert(config_.buffer_cap >= sizeof(trace::TraceHeader),
               "stream buffer cap smaller than a trace header");
    config_.credit_quantum = std::max<std::uint64_t>(
        1, std::min(config_.credit_quantum, config_.buffer_cap));
    if (config_.metrics != nullptr) {
        config_.metrics->counter("stream.sessions_opened").add();
        config_.metrics->gauge("stream.active_sessions").add();
    }
}

StreamSession::~StreamSession()
{
    abort();
    joinEngine();
}

void
StreamSession::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        granted_ = config_.buffer_cap;
    }
    fireCredit(config_.buffer_cap);
    engine_ = std::thread([this] { engineMain(); });
}

bool
StreamSession::feed(const char *data, std::size_t len,
                    std::string &err)
{
    std::uint64_t grant = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (failed_) {
            // The session is unwinding; frames already in flight
            // from the client are tolerated and discarded.
            return true;
        }
        if (ended_) {
            err = "stream data after SUBMIT_END";
            return false;
        }
        if (received_ + len > granted_) {
            err = "stream credit exceeded ("
                + std::to_string(received_ + len) + " sent, "
                + std::to_string(granted_) + " granted)";
            return false;
        }
        received_ += len;
        buf_.append(data, len);
        net_gauge_ += static_cast<std::int64_t>(len);
        if (config_.metrics != nullptr)
            config_.metrics->gauge("stream.buffered_bytes")
                .add(static_cast<std::int64_t>(len));
        drainLocked();
        grant = maybeGrantLocked();
        cv_.notify_all();
    }
    if (grant != 0)
        fireCredit(grant);
    return true;
}

void
StreamSession::end()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (failed_ || ended_)
        return;
    ended_ = true;
    reader_.endOfStream();
    drainLocked();
    cv_.notify_all();
}

void
StreamSession::abort()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (failed_ || finished_.load(std::memory_order_acquire))
        return;
    if (config_.metrics != nullptr)
        config_.metrics->counter("stream.aborts").add();
    failLocked("streaming session aborted");
}

void
StreamSession::joinEngine()
{
    if (engine_.joinable())
        engine_.join();
}

std::uint64_t
StreamSession::grantedBytes()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return granted_;
}

void
StreamSession::drainLocked()
{
    if (failed_)
        return;

    if (!header_ready_) {
        if (!reader_.readHeader()) {
            if (!reader_.error().empty())
                failLocked("trace rejected: " + reader_.error());
            return;  // starved: resume on the next feed (or end)
        }
        // Header landed: everything the engine needs to configure
        // itself is now known. Resolve the fault spec exactly like
        // the buffered path — explicit override wins, else the
        // trace's recorded spec unless the client opted out.
        noteConsumedLocked(source_.consumed());
        trace_name_ = reader_.name();
        nthreads_ = reader_.nthreads();
        std::string spec(config_.options.fault_spec.data());
        if (spec.empty()
            && !(config_.options.flags
                 & service::kJobIgnoreTraceFaults))
            spec = reader_.faultSpec();
        std::string err;
        if (!spec.empty() && spec != "none"
            && !pmu::resolveFaultSpec(spec, fault_config_, err)) {
            failLocked("trace carries unusable fault spec: " + err);
            return;
        }
        queues_.resize(nthreads_);
        header_ready_ = true;
        cv_.notify_all();
    }

    trace::TraceRecord batch[kBatch];
    while (!reader_.done()) {
        const std::size_t got = reader_.next(batch, kBatch);
        for (std::size_t i = 0; i < got; ++i)
            queues_[batch[i].tid].push_back(batch[i].toOp());
        if (!reader_.error().empty()) {
            failLocked("trace rejected: " + reader_.error());
            return;
        }
        if (got == 0)
            break;  // starved mid-record
    }

    if (reader_.done() && ended_ && !input_done_) {
        const std::size_t leftover = buf_.size() - buf_pos_;
        if (leftover > 0) {
            failLocked(std::to_string(leftover)
                       + " bytes of trailing garbage after "
                       + std::to_string(reader_.recordCount())
                       + " records");
            return;
        }
        input_done_ = true;
        cv_.notify_all();
    }
}

void
StreamSession::failLocked(const std::string &message)
{
    if (failed_)
        return;
    failed_ = true;
    error_ = message;
    input_done_ = true;
    cancel_.store(true, std::memory_order_release);
    cv_.notify_all();
}

void
StreamSession::noteConsumedLocked(std::uint64_t n)
{
    consumed_bytes_ += n;
    gauge_pending_ += static_cast<std::int64_t>(n);
    if (gauge_pending_ >= kGaugeFlush) {
        if (config_.metrics != nullptr)
            config_.metrics->gauge("stream.buffered_bytes")
                .sub(gauge_pending_);
        net_gauge_ -= gauge_pending_;
        gauge_pending_ = 0;
    }
}

std::uint64_t
StreamSession::maybeGrantLocked()
{
    if (ended_ || failed_)
        return 0;
    const std::uint64_t want = consumed_bytes_ + config_.buffer_cap;
    if (want >= granted_ + config_.credit_quantum) {
        granted_ = want;
        return granted_;
    }
    return 0;
}

void
StreamSession::fireCredit(std::uint64_t granted_total)
{
    if (config_.metrics != nullptr)
        config_.metrics->counter("stream.credits_issued").add();
    if (callbacks_.on_credit)
        callbacks_.on_credit(granted_total);
}

bool
StreamSession::popOp(ThreadId tid, runtime::Op &op)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (cancel_.load(std::memory_order_relaxed))
            return false;
        std::deque<runtime::Op> &queue = queues_[tid];
        if (!queue.empty()) {
            op = queue.front();
            queue.pop_front();
            noteConsumedLocked(sizeof(trace::TraceRecord));
            const std::uint64_t grant = maybeGrantLocked();
            lock.unlock();
            if (grant != 0)
                fireCredit(grant);
            return true;
        }
        if (input_done_)
            return false;
        if (received_ >= granted_ && !ended_) {
            // The engine needs this thread's next record but the
            // client's window is exhausted — every buffered byte
            // belongs to other threads. Grant past the cap rather
            // than deadlock (see the file comment; the cap is soft
            // against adversarially skewed interleavings).
            granted_ += config_.credit_quantum;
            const std::uint64_t grant = granted_;
            if (config_.metrics != nullptr)
                config_.metrics
                    ->counter("stream.emergency_credits")
                    .add();
            lock.unlock();
            fireCredit(grant);
            lock.lock();
            continue;
        }
        cv_.wait(lock);
    }
}

void
StreamSession::engineMain()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock,
                 [this] { return header_ready_ || failed_; });
        if (failed_) {
            const std::string message = error_;
            lock.unlock();
            finish(false, service::jsonError(message));
            return;
        }
    }

    // Identical option mapping to Server::dispatchJob, so a streamed
    // job's report is byte-for-byte the buffered job's.
    const service::JobOptions &o = config_.options;
    runtime::SimConfig sim_config = config_.base;
    sim_config.mode = static_cast<instr::ToolMode>(o.mode);
    sim_config.detector =
        static_cast<runtime::DetectorKind>(o.detector);
    sim_config.gating.hitm_counter.sample_after = o.sav;
    sim_config.granule_shift = o.granule_shift;
    sim_config.mem.ncores = o.cores;
    sim_config.seed = o.seed;
    sim_config.faults = fault_config_;

    service::JobReport base_report;
    base_report.trace = trace_name_;
    base_report.nthreads = nthreads_;
    base_report.options = o;
    base_report.fault_spec = pmu::faultSpec(sim_config.faults);

    runtime::Simulator sim(sim_config);
    EngineProgram program(*this);

    runtime::RunObserver observer;
    observer.interval_ops = config_.partial_interval;
    observer.cancel = &cancel_;
    observer.on_partial = [&](const runtime::RunResult &snapshot) {
        service::JobReport partial = base_report;
        partial.result = &snapshot;
        partial.partial_seq = ++partial_seq_;
        partial.include_host_timing = false;
        if (config_.metrics != nullptr)
            config_.metrics->counter("stream.partials_emitted")
                .add();
        if (callbacks_.on_partial)
            callbacks_.on_partial(partial_seq_,
                                  service::jobReportJson(partial));
    };

    const auto t_start = Clock::now();
    const runtime::RunResult result = sim.run(program, &observer);
    const auto t_done = Clock::now();

    std::string message;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (failed_)
            message = error_;
        else if (observer.cancelled
                 || cancel_.load(std::memory_order_acquire))
            message = "streaming session aborted";
    }
    if (!message.empty()) {
        finish(false, service::jsonError(message));
        return;
    }

    base_report.result = &result;
    base_report.include_host_timing =
        !(o.flags & service::kJobOmitHostTiming);
    base_report.host_ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                t_done - t_start)
                .count())
        / 1000.0;
    finish(true, service::jobReportJson(base_report));
}

void
StreamSession::finish(bool ok, const std::string &json)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        input_done_ = true;
        if (config_.metrics != nullptr && net_gauge_ != 0)
            config_.metrics->gauge("stream.buffered_bytes")
                .sub(net_gauge_);
        net_gauge_ = 0;
        gauge_pending_ = 0;
    }
    if (config_.metrics != nullptr) {
        config_.metrics->gauge("stream.active_sessions").sub();
        config_.metrics
            ->counter(ok ? "stream.jobs_completed"
                         : "stream.jobs_failed")
            .add();
    }
    finished_.store(true, std::memory_order_release);
    if (callbacks_.on_done)
        callbacks_.on_done(ok, json);
}

} // namespace hdrd::stream
