/**
 * @file
 * The streaming analysis subsystem: incremental trace ingestion with
 * live partial reports.
 *
 * A StreamSession turns a job from "buffer the whole trace, then
 * analyze" into a pull-based pipeline. The network plane feeds raw
 * TRC2 bytes as they arrive (feed()); the session parses them
 * incrementally with the streaming trace::TraceReader into bounded
 * per-thread operation queues; a dedicated engine thread runs the
 * Simulator over a Program whose thread bodies block-pop those
 * queues. Analysis therefore overlaps ingestion, and the session's
 * resident footprint is bounded by the credit window instead of the
 * trace length.
 *
 * Flow control is cumulative byte credit: the client may have sent at
 * most `granted` bytes in total, and the grant advances as the engine
 * consumes records, keeping buffered-but-unanalyzed bytes near
 * buffer_cap. When the engine starves on a thread whose records the
 * exhausted window is holding back (a heavily skewed thread
 * interleaving in the uploaded image), the session issues an
 * emergency grant beyond the cap rather than deadlocking — the
 * memory cap is firm for well-interleaved traces and soft against
 * adversarial ones.
 *
 * Determinism: the simulator's schedule is a pure function of
 * (trace, config); thread bodies blocking inside next() only delay
 * the host, never reorder the simulated interleaving, and
 * nextIsPure() == false opts out of the (behavior-neutral) prefetch
 * path. Final streamed reports are byte-identical to the buffered
 * path's, and every partial snapshot is emitted at a deterministic
 * executed-op count, so partial N of a job is byte-stable too.
 *
 * Thread model: feed()/end()/abort() are called by the owning I/O
 * shard thread and never block. Callbacks fire on either the feeding
 * thread (credit) or the engine thread (credit, partials, the final
 * report) and must be non-blocking and thread-safe — hdrd_served's
 * implementations only post completions to a shard inbox.
 */

#ifndef HDRD_STREAM_STREAM_SESSION_HH
#define HDRD_STREAM_STREAM_SESSION_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "pmu/faults.hh"
#include "runtime/op.hh"
#include "runtime/simulator.hh"
#include "service/protocol.hh"
#include "trace/trace_io.hh"

namespace hdrd::service
{
class Metrics;
}

namespace hdrd::stream
{

/** Everything a StreamSession is parameterized by. */
struct StreamConfig
{
    /** Wire job id the uploader keyed the stream with. */
    std::uint64_t job_id = 0;

    /** Client-chosen session name (the ATTACH key). */
    std::string name;

    /** Analysis options, exactly as for a buffered SUBMIT_JOB. */
    service::JobOptions options;

    /** Daemon-wide base configuration the options overlay. */
    runtime::SimConfig base;

    /** Target bound on buffered-but-unanalyzed bytes. */
    std::uint64_t buffer_cap = 4ull << 20;

    /** Granularity of credit advances (bytes per CREDIT frame). */
    std::uint64_t credit_quantum = 256 * 1024;

    /** Executed ops between partial reports (0 = no partials). */
    std::uint64_t partial_interval = 1ull << 20;

    /** Observability registry (nullptr = unmonitored). */
    service::Metrics *metrics = nullptr;
};

/**
 * Session event sinks. See the file comment for threading rules; any
 * callback may be empty.
 */
struct StreamCallbacks
{
    /** New cumulative byte grant for the uploader. */
    std::function<void(std::uint64_t granted_total)> on_credit;

    /** A finalized hdrd-report-partial-v1 snapshot. */
    std::function<void(std::uint64_t seq, const std::string &json)>
        on_partial;

    /**
     * Terminal event, fired exactly once: the final hdrd-report-v1
     * (ok) or an error JSON (rejected trace, truncation, abort).
     */
    std::function<void(bool ok, const std::string &json)> on_done;
};

/**
 * One live streaming analysis job. Create, start(), then feed bytes
 * until end(); abort() (idempotent) cancels from any state. The
 * destructor aborts and joins the engine thread.
 */
class StreamSession
{
  public:
    StreamSession(StreamConfig config, StreamCallbacks callbacks);

    /** Aborts if still running and joins the engine thread. */
    ~StreamSession();

    StreamSession(const StreamSession &) = delete;
    StreamSession &operator=(const StreamSession &) = delete;

    /** Issue the initial credit grant and launch the engine. */
    void start();

    /**
     * Ingest @p len trace bytes (chunk boundaries arbitrary). Never
     * blocks: bytes beyond parseable records buffer internally.
     * @return false with @p err set on a protocol violation (credit
     *         overrun, data after end()); trace-level problems travel
     *         through on_done instead.
     */
    bool feed(const char *data, std::size_t len, std::string &err);

    /** No further bytes: finish parsing, let the engine drain. */
    void end();

    /**
     * Cancel from any state (client hangup, daemon shutdown). The
     * engine unwinds through the simulator's cancellation path and
     * on_done reports the abort; safe to call repeatedly and after
     * completion.
     */
    void abort();

    /** True once on_done has fired (the engine is about to exit). */
    bool finished() const
    {
        return finished_.load(std::memory_order_acquire);
    }

    /** Block until the engine thread exits (cheap after finished()). */
    void joinEngine();

    const std::string &name() const { return config_.name; }
    std::uint64_t jobId() const { return config_.job_id; }

    /** Cumulative grant so far (tests; racy snapshot). */
    std::uint64_t grantedBytes();

  private:
    /** trace::ByteSource over buf_; only used under mutex_. */
    class BufSource : public trace::ByteSource
    {
      public:
        explicit BufSource(StreamSession &session)
            : session_(session)
        {
        }

        std::size_t read(char *dst, std::size_t n) override;

        /** Bytes handed to the reader so far. */
        std::uint64_t consumed() const { return consumed_; }

      private:
        StreamSession &session_;
        std::uint64_t consumed_ = 0;
    };

    class EngineProgram;
    class EngineBody;

    void engineMain();

    /** Engine-side blocking pop of thread @p tid's next operation. */
    bool popOp(ThreadId tid, runtime::Op &op);

    /** Pump the reader over buffered bytes; mutex_ held. */
    void drainLocked();

    /** Poison the session and cancel the engine; mutex_ held. */
    void failLocked(const std::string &message);

    /** Account @p n consumed bytes toward credit; mutex_ held. */
    void noteConsumedLocked(std::uint64_t n);

    /** Advance the grant if a quantum freed up; mutex_ held.
     *  @return the new cumulative grant to announce, or 0. */
    std::uint64_t maybeGrantLocked();

    void fireCredit(std::uint64_t granted_total);

    /** Fire on_done exactly once and settle the gauges. */
    void finish(bool ok, const std::string &json);

    StreamConfig config_;
    StreamCallbacks callbacks_;

    std::mutex mutex_;
    std::condition_variable cv_;

    /** Raw received-but-unparsed bytes (consumed from the front). */
    std::string buf_;
    std::size_t buf_pos_ = 0;

    BufSource source_{*this};
    trace::TraceReader reader_{source_,
                               trace::TraceReader::kUnknownSize};

    /** Parsed-but-unexecuted operations, per thread. */
    std::vector<std::deque<runtime::Op>> queues_;

    // --- credit accounting (bytes, cumulative) ---
    std::uint64_t received_ = 0;
    std::uint64_t granted_ = 0;
    std::uint64_t consumed_bytes_ = 0;

    /** Net stream.buffered_bytes gauge contribution outstanding. */
    std::int64_t net_gauge_ = 0;
    std::int64_t gauge_pending_ = 0;

    // --- parse / lifecycle state (mutex_) ---
    bool header_ready_ = false;
    bool ended_ = false;

    /** No more operations will ever be queued (end or failure). */
    bool input_done_ = false;

    bool failed_ = false;
    std::string error_;

    std::string trace_name_;
    std::uint32_t nthreads_ = 0;
    pmu::FaultConfig fault_config_;

    std::atomic<bool> cancel_{false};
    std::atomic<bool> finished_{false};

    std::uint64_t partial_seq_ = 0;

    std::thread engine_;
};

} // namespace hdrd::stream

#endif // HDRD_STREAM_STREAM_SESSION_HH
