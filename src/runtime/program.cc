#include "runtime/program.hh"

namespace hdrd::runtime
{

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::kRead:
        return "read";
      case OpType::kWrite:
        return "write";
      case OpType::kWork:
        return "work";
      case OpType::kLock:
        return "lock";
      case OpType::kUnlock:
        return "unlock";
      case OpType::kBarrier:
        return "barrier";
      case OpType::kThreadCreate:
        return "thread_create";
      case OpType::kThreadJoin:
        return "thread_join";
      case OpType::kAtomicRmw:
        return "atomic_rmw";
      case OpType::kAtomicWait:
        return "atomic_wait";
      case OpType::kRdLock:
        return "rd_lock";
      case OpType::kRdUnlock:
        return "rd_unlock";
      case OpType::kWrLock:
        return "wr_lock";
      case OpType::kWrUnlock:
        return "wr_unlock";
    }
    return "?";
}

} // namespace hdrd::runtime
