#include "runtime/simulator.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/radix_table.hh"
#include "common/rng.hh"
#include "demand/cold_region.hh"
#include "detect/fasttrack.hh"
#include "detect/lockset.hh"
#include "detect/naive_hb.hh"
#include "detect/sync_state.hh"
#include "pmu/pmu.hh"
#include "runtime/program.hh"
#include "runtime/scheduler.hh"
#include "runtime/sync.hh"
#include "runtime/thread_context.hh"

namespace hdrd::runtime
{

namespace
{

/** Per-granule ground-truth sharing state. */
struct GtState
{
    ThreadId last_writer = kInvalidThread;

    /** Bitmask of threads that read since the last write. */
    std::uint64_t readers_since_write = 0;
};

} // namespace

Simulator::Simulator(const SimConfig &config) : config_(config)
{
    if (config_.threads_per_core == 0)
        fatal("threads_per_core must be positive");
}

void
Simulator::reconfigure(const SimConfig &config)
{
    if (config.threads_per_core == 0)
        fatal("threads_per_core must be positive");
    config_ = config;
}

RunResult
Simulator::run(Program &program, RunObserver *observer)
{
    using instr::ToolMode;
    switch (config_.mode) {
      case ToolMode::kNative:
        return runImpl<ToolMode::kNative>(program, observer);
      case ToolMode::kContinuous:
        return runImpl<ToolMode::kContinuous>(program, observer);
      case ToolMode::kDemand:
        return runImpl<ToolMode::kDemand>(program, observer);
    }
    fatal("unknown tool mode ", static_cast<int>(config_.mode));
}

template <instr::ToolMode kMode>
RunResult
Simulator::runImpl(Program &program, RunObserver *observer)
{
    using instr::ToolMode;
    using demand::Strategy;

    const std::uint32_t nthreads = program.numThreads();
    hdrdAssert(nthreads > 0, "program has no threads");
    const std::uint32_t ncores = config_.mem.ncores;
    const instr::CostModel &cost = config_.cost;
    constexpr bool tool = kMode != ToolMode::kNative;
    constexpr bool demand_mode = kMode == ToolMode::kDemand;
    const Strategy strategy = config_.gating.strategy;
    const bool need_gt = config_.track_ground_truth
        || (demand_mode && strategy == Strategy::kDemandOracle);
    if (need_gt && nthreads > 64)
        fatal("ground-truth tracking supports at most 64 threads");
    const std::uint32_t granule_shift = config_.granule_shift;

    // Platform.
    mem::Hierarchy hier(config_.mem);
    pmu::Pmu pmu(ncores);
    // Hardware-signal fault injection. The model owns a private Rng
    // (seeded from run seed + fault seed), so the main rng stream —
    // and with it every schedule — is untouched; when no fault is
    // configured the null pointer keeps the PMU paths pass-through.
    pmu::FaultModel faults(config_.faults, ncores, config_.seed);
    pmu::FaultModel *const fault_ptr =
        faults.enabled() ? &faults : nullptr;
    Rng rng(config_.seed);
    Scheduler sched(config_.sched_jitter, rng.split(),
                    config_.sched_policy);
    std::vector<Cycle> core_cycles(ncores, 0);

    // Detection machinery. Sync clocks are always maintained when a
    // tool is attached; per-access analysis is what gets gated.
    detect::SyncClocks clocks(nthreads);
    RunResult result;
    std::unique_ptr<detect::Detector> detector;
    if (config_.detector == DetectorKind::kNaiveHb) {
        detector = std::make_unique<detect::NaiveHbDetector>(
            clocks, result.reports, granule_shift);
    } else if (config_.detector == DetectorKind::kLockset) {
        detector = std::make_unique<detect::LocksetDetector>(
            result.reports, granule_shift);
    } else {
        // Borrow the engine's persistent shadow: the ctor retires any
        // previous run's state in O(1) and recycles its chunk pages
        // and pooled read clocks for this run.
        detector = std::make_unique<detect::FastTrackDetector>(
            clocks, result.reports, ft_shadow_, granule_shift);
    }
    // Devirtualized fast path: FastTrackDetector is final, so calls
    // through this pointer bind directly (no vtable dispatch on the
    // default detector's per-access path).
    detect::FastTrackDetector *const ft =
        config_.detector == DetectorKind::kFastTrack
            ? static_cast<detect::FastTrackDetector *>(detector.get())
            : nullptr;
    demand::DemandController controller(config_.gating, rng.split());
    demand::ColdRegionSampler cold_sampler(
        config_.gating.cold_decay, config_.gating.cold_floor,
        rng.split());
    std::vector<std::uint64_t> watchlist(
        config_.gating.watchlist.begin(),
        config_.gating.watchlist.end());
    std::sort(watchlist.begin(), watchlist.end());

    // Threads.
    std::vector<ThreadContext> ctxs;
    ctxs.reserve(nthreads);
    const bool implicit = program.implicitStart();
    for (ThreadId t = 0; t < nthreads; ++t) {
        const CoreId core =
            (t / config_.threads_per_core) % ncores;
        const ThreadState initial = (t == 0 || implicit)
            ? ThreadState::kRunnable
            : ThreadState::kNotStarted;
        ctxs.emplace_back(t, core, program.makeThread(t), initial);
    }
    if (tool && implicit) {
        // pthread_create-at-top-of-main: fork edges from thread 0.
        for (ThreadId t = 1; t < nthreads; ++t)
            clocks.fork(0, t);
    }
    SyncObjects sync;
    sched.attach(ctxs, ncores);

    /** A thread left the blocked/not-started state. */
    const auto wake = [&](const Wakeup &w) {
        ctxs[w.tid].setState(ThreadState::kRunnable);
        ctxs[w.tid].setResumeTime(w.when);
        sched.onRunnable(w.tid, w.when);
    };

    // PEBS sample latches: the access description a precise sampling
    // facility would deliver with the overflow record, one per core.
    struct PebsLatch
    {
        ThreadId tid = kInvalidThread;
        Addr addr = 0;
        SiteId site = kInvalidSite;
        bool valid = false;

        /** Access-count timestamp, for the staleness bound. */
        std::uint64_t at_access = 0;
    };
    std::vector<PebsLatch> pebs(ncores);

    // Thread currently executing (for interrupt attribution).
    ThreadId current_tid = kInvalidThread;

    // PMU overflow handling: an interrupt is the paper's cue to turn
    // the detector on. The handler charges interrupt cost where it
    // lands and disarms the covered core(s) while analysis is on.
    pmu.setOverflowHandler([&](CoreId core, pmu::EventType) {
        if (!demand_mode)
            return;
        core_cycles[core] += cost.pmu_interrupt;
        ++result.interrupts;
        if (!controller.onInterrupt(current_tid))
            return;
        core_cycles[core] += cost.transition;
        if (controller.failsafeMode()
            == demand::FailsafeMode::kDemand) {
            if (config_.gating.scope == demand::EnableScope::kGlobal)
                pmu.disarmAll();
            else
                pmu.disarm(core);
        }
        // else: escalated failsafe keeps the indicator armed as a
        // canary so signal recovery stays observable.
        if (config_.gating.pebs_precise_capture && pebs[core].valid) {
            const PebsLatch &latch = pebs[core];
            if (config_.gating.pebs_staleness != 0
                && result.mem_accesses - latch.at_access
                       > config_.gating.pebs_staleness) {
                // The latched address is too old to still describe
                // the sharing that raised this interrupt.
                ++result.pebs_stale;
                pebs[core].valid = false;
            } else {
                // Extension: analyze the sampled load retroactively,
                // so the triggering W->R pair itself is visible.
                const auto outcome = ft != nullptr
                    ? ft->onAccess(latch.tid, latch.addr, false,
                                   latch.site)
                    : detector->onAccess(latch.tid, latch.addr, false,
                                         latch.site);
                controller.onAnalyzedAccess(outcome);
                core_cycles[core] += cost.analysisCost(false);
                ++result.pebs_captures;
                ++result.analyzed_accesses;
                pebs[core].valid = false;
            }
        }
    });
    if (demand_mode && strategy == Strategy::kDemandHitm)
        pmu.armAll(config_.gating.hitm_counter);

    RadixTable<GtState> gt_map;

    // Invariant-check countdown: fires exactly when mem_accesses is
    // a multiple of the interval, without a per-access modulo.
    const std::uint64_t inv_interval = config_.invariant_check_interval;
    std::uint64_t inv_countdown = inv_interval;

    // Failsafe health windows: every health_window data accesses the
    // controller gets a fresh view of the signal's health, computed
    // from fault-model and PMU deltas over the window.
    const std::uint64_t health_interval =
        demand_mode && config_.gating.failsafe.escalation
            ? config_.gating.failsafe.health_window
            : 0;
    std::uint64_t health_countdown = health_interval;
    pmu::FaultStats health_prev;

    // Barrier-release scratch, reserved once per run.
    std::vector<ThreadId> barrier_participants;
    barrier_participants.reserve(nthreads);

    // Finalization, shared by the end-of-run result and every
    // observer partial snapshot: assignments only, so applying it to
    // a mid-run copy yields a prefix-consistent view and applying it
    // again later stays correct. Reads engine state, mutates nothing.
    const auto finalize_into = [&](RunResult &r) {
        r.total_ops = 0;
        for (const ThreadContext &tc : ctxs)
            r.total_ops += tc.opsExecuted();
        r.wall_cycles =
            *std::max_element(core_cycles.begin(), core_cycles.end());
        r.enables = controller.enables();
        r.disables = controller.disables();
        r.transitions = controller.transitions();
        r.hitm_loads = hier.stats().counter("hitm_loads");
        r.hitm_transfers = hier.stats().counter("hitm_transfers");
        r.private_writebacks =
            hier.stats().counter("private_writebacks");
        r.mem_latency = hier.latencyHistogram();
        for (std::size_t e = 0; e < pmu::kNumEventTypes; ++e) {
            r.pmu_totals[e] =
                pmu.totalCount(static_cast<pmu::EventType>(e));
        }
        if (faults.enabled()) {
            r.faults_active = true;
            r.faults = faults.stats();
            r.interrupts_suppressed = pmu.interruptsSuppressed();
        }
        if (demand_mode
            && (config_.gating.failsafe.any()
                || config_.gating.pebs_staleness > 0)) {
            r.failsafe_active = true;
            r.failsafe_mode = controller.failsafeMode();
            r.escalations = controller.escalations();
            r.deescalations = controller.deescalations();
            r.ignored_interrupts = controller.ignoredInterrupts();
        }
    };

    // Observer partial cadence: counts executed ops, so the trigger
    // points are a pure function of (program, config) and partial N
    // is byte-stable across runs.
    std::uint64_t partial_countdown =
        observer != nullptr ? observer->interval_ops : 0;

    // Main loop: one operation per iteration, earliest core first.
    for (;;) {
        if (observer != nullptr && observer->cancel != nullptr
            && observer->cancel->load(std::memory_order_relaxed)) {
            observer->cancelled = true;
            break;
        }
        const ThreadId tid = sched.pick(ctxs, core_cycles);
        if (tid == kInvalidThread) {
            const bool all_done = std::all_of(
                ctxs.begin(), ctxs.end(), [](const ThreadContext &tc) {
                    return tc.state() == ThreadState::kFinished;
                });
            if (all_done)
                break;
            if (observer != nullptr && observer->cancel != nullptr
                && observer->cancel->load()) {
                // A cancelled program's blocked threads will never be
                // woken (their feeder is gone); unwind, don't panic.
                observer->cancelled = true;
                break;
            }
            panic("deadlock: no runnable thread in '", program.name(),
                  "' but not all threads finished");
        }
        ThreadContext &tc = ctxs[tid];
        current_tid = tid;
        const CoreId core = tc.core();
        core_cycles[core] =
            std::max(core_cycles[core], tc.resumeTime());

        if (!tc.fetch()) {
            tc.setState(ThreadState::kFinished);
            sched.onNotRunnable(tid);
            for (const Wakeup &w :
                 sync.onThreadFinished(tid, core_cycles[core])) {
                wake(w);
                if (tool)
                    clocks.join(w.tid, tid);
            }
            continue;
        }

        // Reference, not copy: consume() only clears the fetched
        // flag, the op storage stays intact until the next fetch.
        const Op &op = tc.current();
        const Cycle now = core_cycles[core];

        switch (op.type) {
          case OpType::kWork: {
            double dilation = 1.0;
            if (tool) {
                const bool analysis_on =
                    kMode == ToolMode::kContinuous
                    || (demand_mode && controller.shouldAnalyze(tid));
                dilation = analysis_on
                    ? cost.work_dilation_enabled
                    : cost.work_dilation_disabled;
            }
            core_cycles[core] += static_cast<Cycle>(
                static_cast<double>(op.arg * cost.base_work)
                * dilation);
            ++result.work_ops;
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            break;
          }

          case OpType::kRead:
          case OpType::kWrite: {
            const bool write = op.type == OpType::kWrite;
            // Start the detector's shadow-word fetch early: the hint
            // overlaps the cache/PMU modelling below, so the analysis
            // path finds its VarState already in host cache. Purely
            // a performance hint — no simulated state changes.
            if (tool && ft != nullptr)
                ft->shadow().prefetch(op.addr);
            const auto res = hier.access(core, op.addr, write);
            Cycle charge = cost.base_mem_op + res.latency;

            ++result.mem_accesses;
            if (write)
                ++result.writes;
            else
                ++result.reads;

            // Feed the PMU's free-running and sampling counters:
            // the access's whole event set in one batched call. The
            // service point's miss events come from a lookup table
            // instead of a branch per level.
            static constexpr pmu::EventMask kMissEvents[] = {
                /* kL1 */ 0,
                /* kL2 */ pmu::eventBit(pmu::EventType::kL1Miss),
                /* kL3 */ pmu::eventBit(pmu::EventType::kL1Miss)
                    | pmu::eventBit(pmu::EventType::kL2Miss),
                /* kRemoteCache */
                pmu::eventBit(pmu::EventType::kL1Miss)
                    | pmu::eventBit(pmu::EventType::kL2Miss),
                /* kMemory */ pmu::eventBit(pmu::EventType::kL1Miss)
                    | pmu::eventBit(pmu::EventType::kL2Miss)
                    | pmu::eventBit(pmu::EventType::kL3Miss),
            };
            pmu::EventMask events = pmu::eventBit(
                write ? pmu::EventType::kStores
                      : pmu::EventType::kLoads)
                | kMissEvents[static_cast<std::size_t>(res.where)];
            if (res.hitm_load)
                events |= pmu::eventBit(pmu::EventType::kHitmLoad);
            if (res.hitm) {
                // kHitmAny models hypothetical hardware that also
                // exposes store-side HITMs (the W->W sharing real
                // load-only events miss).
                events |= pmu::eventBit(pmu::EventType::kHitmAny);
            }
            if (res.invalidations > 0) {
                events |= pmu::eventBit(
                    pmu::EventType::kInvalidationsSent);
            }
            const bool sampled = pmu.recordAccess(
                core, events, res.invalidations, fault_ptr);
            if (sampled) {
                // This access is the sampled event: latch its PEBS
                // record for possible precise capture at delivery.
                const Addr latched = fault_ptr != nullptr
                    ? faults.filterAddr(core, op.addr)
                    : op.addr;
                pebs[core] = PebsLatch{tid, latched, op.site, true,
                                       result.mem_accesses};
            }

            // Ground-truth sharing classification (word granules).
            bool gt_shared = false;
            if (need_gt) {
                GtState &g = gt_map.get(op.addr >> granule_shift);
                if (write) {
                    if (g.last_writer != kInvalidThread
                        && g.last_writer != tid) {
                        ++result.gt.ww;
                        gt_shared = true;
                    }
                    if ((g.readers_since_write
                         & ~(std::uint64_t{1} << tid)) != 0) {
                        ++result.gt.rw;
                        gt_shared = true;
                    }
                    g.last_writer = tid;
                    g.readers_since_write = 0;
                } else {
                    if (g.last_writer != kInvalidThread
                        && g.last_writer != tid) {
                        ++result.gt.wr;
                        gt_shared = true;
                    }
                    g.readers_since_write |= std::uint64_t{1} << tid;
                }
                if (gt_shared)
                    ++result.gt.shared_accesses;
            }

            // Gating decision.
            bool analyze = false;
            if constexpr (kMode == ToolMode::kContinuous) {
                analyze = true;
            } else if constexpr (demand_mode) {
                if (controller.onAccessBoundary()) {
                    // A sampling-window boundary toggled the state.
                    core_cycles[core] += cost.transition;
                }
                if (strategy == Strategy::kColdRegion) {
                    // Per-site adaptive sampling: no global state.
                    analyze = cold_sampler.shouldAnalyze(op.site);
                } else if (strategy == Strategy::kWatchlist) {
                    analyze = std::binary_search(
                        watchlist.begin(), watchlist.end(),
                        op.addr >> granule_shift);
                } else {
                    if (strategy == Strategy::kDemandOracle
                        && gt_shared && !controller.enabledFor(tid)
                        && controller.onOracleSharing(tid)) {
                        core_cycles[core] += cost.transition;
                    }
                    analyze = controller.shouldAnalyze(tid);
                }
            }

            if (tool && !analyze)
                charge += cost.gate_check;
            if (analyze) {
                charge += cost.analysisCost(write);
                // Continuous mode discards the outcome (only demand
                // gating consumes it), so the typed entry statically
                // skips the sharing classification there.
                const auto outcome = ft != nullptr
                    ? ft->onAccessTyped<demand_mode>(tid, op.addr,
                                                     write, op.site)
                    : detector->onAccess(tid, op.addr, write,
                                         op.site);
                ++result.analyzed_accesses;
                if (demand_mode
                    && controller.onAnalyzedAccess(outcome)) {
                    // Watchdog switched analysis off: re-arm the
                    // hardware indicator.
                    core_cycles[core] += cost.transition;
                    if (strategy == Strategy::kDemandHitm)
                        pmu.armAll(config_.gating.hitm_counter);
                }
            }

            core_cycles[core] += charge;
            tc.consume();
            pmu.retireOp(core, fault_ptr);

            if (inv_interval != 0 && --inv_countdown == 0) {
                hier.checkInvariants();
                inv_countdown = inv_interval;
            }

            if (health_interval != 0 && --health_countdown == 0) {
                health_countdown = health_interval;
                const pmu::FaultStats &fs = faults.stats();
                demand::SignalHealth health;
                const std::uint64_t seen =
                    fs.samples_seen - health_prev.samples_seen;
                const std::uint64_t dropped =
                    fs.dropped() - health_prev.dropped();
                health.drop_ratio = seen == 0
                    ? 0.0
                    : static_cast<double>(dropped)
                        / static_cast<double>(seen);
                const std::uint64_t skid_ev =
                    fs.skid_events - health_prev.skid_events;
                const std::uint64_t skid_sq =
                    fs.skid_added_sq - health_prev.skid_added_sq;
                health.skid_rms = skid_ev == 0
                    ? 0.0
                    : std::sqrt(static_cast<double>(skid_sq)
                                / static_cast<double>(skid_ev));
                health.suppressed = (fs.coalesced + fs.throttled)
                    - (health_prev.coalesced + health_prev.throttled);
                health_prev = fs;
                if (controller.onSignalHealth(health)) {
                    core_cycles[core] += cost.transition;
                    if (strategy == Strategy::kDemandHitm) {
                        // Escalated rungs keep the indicator armed
                        // as a canary; back on the demand rung the
                        // arming follows the enable state again.
                        if (controller.failsafeMode()
                                != demand::FailsafeMode::kDemand
                            || !controller.enabled()) {
                            pmu.armAll(config_.gating.hitm_counter);
                        } else {
                            pmu.disarmAll();
                        }
                    }
                }
            }
            break;
          }

          case OpType::kAtomicRmw: {
            // A seq_cst atomic read-modify-write: a store at the
            // protocol level, an acquire+release pair at the
            // happens-before level, and never a *data* access for the
            // detector (real tools intercept atomics as sync).
            const auto res = hier.access(core, op.addr, true);
            Cycle charge = cost.base_mem_op + res.latency;
            pmu::EventMask events =
                pmu::eventBit(pmu::EventType::kStores);
            if (res.hitm) {
                // Visible to the hypothetical any-access event only:
                // locked RMWs don't retire as ordinary loads.
                events |= pmu::eventBit(pmu::EventType::kHitmAny);
            }
            pmu.recordAccess(core, events, 0, fault_ptr);
            if (need_gt) {
                GtState &g = gt_map.get(op.addr >> granule_shift);
                g.last_writer = tid;
                g.readers_since_write = 0;
            }
            if (tool) {
                // Each atomic address is its own synchronization
                // object; the high tag bit keeps the key space
                // disjoint from workload-chosen lock ids.
                const std::uint64_t key = (1ULL << 63)
                    | (op.addr >> granule_shift);
                clocks.acquire(tid, key);
                clocks.release(tid, key);
                charge += cost.analysis_sync;
            }
            core_cycles[core] += charge;
            ++result.atomic_ops;
            ++result.sync_ops;
            pmu.recordEvent(core, pmu::EventType::kSyncOps);
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            // Wake futex-style waiters whose threshold is now met.
            for (const Wakeup &w : sync.onAtomicRmw(
                     op.addr >> granule_shift, core_cycles[core])) {
                wake(w);
            }
            break;
          }

          case OpType::kAtomicWait: {
            const std::uint64_t cell = op.addr >> granule_shift;
            if (!sync.atomicSatisfied(cell, op.arg)) {
                sync.addAtomicWaiter(tid, cell, op.arg);
                tc.setState(ThreadState::kBlocked);
                sched.onNotRunnable(tid);
                break;  // op stays pending; retried after wake
            }
            // Acquire-ordering against the releasing RMW chain.
            if (tool) {
                const std::uint64_t key = (1ULL << 63) | cell;
                clocks.acquire(tid, key);
            }
            core_cycles[core] +=
                cost.base_sync + (tool ? cost.analysis_sync : 0);
            ++result.sync_ops;
            pmu.recordEvent(core, pmu::EventType::kSyncOps);
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            break;
          }

          case OpType::kLock: {
            if (!sync.tryLock(tid, op.arg, now)) {
                tc.setState(ThreadState::kBlocked);
                sched.onNotRunnable(tid);
                break;  // op stays pending; retried after wake
            }
            if (tool) {
                clocks.acquire(tid, op.arg);
                detector->onLock(tid, op.arg);
            }
            core_cycles[core] +=
                cost.base_sync + (tool ? cost.analysis_sync : 0);
            ++result.sync_ops;
            pmu.recordEvent(core, pmu::EventType::kSyncOps);
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            break;
          }

          case OpType::kUnlock: {
            if (tool) {
                clocks.release(tid, op.arg);
                detector->onUnlock(tid, op.arg);
            }
            core_cycles[core] +=
                cost.base_sync + (tool ? cost.analysis_sync : 0);
            if (auto w = sync.unlock(tid, op.arg, core_cycles[core]))
                wake(*w);
            ++result.sync_ops;
            pmu.recordEvent(core, pmu::EventType::kSyncOps);
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            break;
          }

          case OpType::kRdLock:
          case OpType::kWrLock: {
            const bool wants_write = op.type == OpType::kWrLock;
            const bool granted = wants_write
                ? sync.tryWrLock(tid, op.arg, now)
                : sync.tryRdLock(tid, op.arg, now);
            if (!granted) {
                tc.setState(ThreadState::kBlocked);
                sched.onNotRunnable(tid);
                break;  // retried after handoff wake
            }
            if (tool) {
                if (wants_write)
                    clocks.wrAcquire(tid, op.arg);
                else
                    clocks.rdAcquire(tid, op.arg);
                // Lockset sees rwlocks in a tagged key space so
                // workload lock/rwlock ids never collide; read-mode
                // holds protect reads only (Eraser's rwlock rule).
                detector->onLock(tid, (1ULL << 62) | op.arg,
                                 wants_write);
            }
            core_cycles[core] +=
                cost.base_sync + (tool ? cost.analysis_sync : 0);
            ++result.sync_ops;
            pmu.recordEvent(core, pmu::EventType::kSyncOps);
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            break;
          }

          case OpType::kRdUnlock:
          case OpType::kWrUnlock: {
            const bool was_write = op.type == OpType::kWrUnlock;
            if (tool) {
                if (was_write)
                    clocks.wrRelease(tid, op.arg);
                else
                    clocks.rdRelease(tid, op.arg);
                detector->onUnlock(tid, (1ULL << 62) | op.arg);
            }
            core_cycles[core] +=
                cost.base_sync + (tool ? cost.analysis_sync : 0);
            const auto woken = was_write
                ? sync.wrUnlock(tid, op.arg, core_cycles[core])
                : sync.rdUnlock(tid, op.arg, core_cycles[core]);
            for (const Wakeup &w : woken)
                wake(w);
            ++result.sync_ops;
            pmu.recordEvent(core, pmu::EventType::kSyncOps);
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            break;
          }

          case OpType::kBarrier: {
            core_cycles[core] +=
                cost.base_sync + (tool ? cost.analysis_sync : 0);
            const std::uint32_t expected =
                op.arg2 != 0 ? op.arg2 : nthreads;
            ++result.sync_ops;
            pmu.recordEvent(core, pmu::EventType::kSyncOps);
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            auto released = sync.arriveBarrier(tid, op.arg, expected,
                                               core_cycles[core]);
            if (!released) {
                tc.setState(ThreadState::kBlocked);
                sched.onNotRunnable(tid);
                break;
            }
            // Last arriver: all-to-all happens-before, wake everyone.
            if (tool) {
                barrier_participants.clear();
                for (const Wakeup &w : *released)
                    barrier_participants.push_back(w.tid);
                clocks.barrier(barrier_participants);
            }
            for (const Wakeup &w : *released) {
                if (w.tid == tid) {
                    core_cycles[core] =
                        std::max(core_cycles[core], w.when);
                } else {
                    wake(w);
                }
            }
            break;
          }

          case OpType::kThreadCreate: {
            const auto child = static_cast<ThreadId>(op.arg);
            hdrdAssert(child < nthreads && child != tid,
                       "create of invalid thread ", child);
            ThreadContext &cc = ctxs[child];
            hdrdAssert(cc.state() == ThreadState::kNotStarted,
                       "thread ", child, " created twice");
            core_cycles[core] +=
                cost.base_sync + (tool ? cost.analysis_sync : 0);
            if (tool)
                clocks.fork(tid, child);
            cc.setState(ThreadState::kRunnable);
            cc.setResumeTime(core_cycles[core]);
            sched.onRunnable(child, core_cycles[core]);
            ++result.sync_ops;
            pmu.recordEvent(core, pmu::EventType::kSyncOps);
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            break;
          }

          case OpType::kThreadJoin: {
            const auto target = static_cast<ThreadId>(op.arg);
            hdrdAssert(target < nthreads && target != tid,
                       "join of invalid thread ", target);
            core_cycles[core] +=
                cost.base_sync + (tool ? cost.analysis_sync : 0);
            ++result.sync_ops;
            pmu.recordEvent(core, pmu::EventType::kSyncOps);
            tc.consume();
            pmu.retireOp(core, fault_ptr);
            if (ctxs[target].state() == ThreadState::kFinished) {
                if (tool)
                    clocks.join(tid, target);
            } else {
                sync.addJoinWaiter(tid, target);
                tc.setState(ThreadState::kBlocked);
                sched.onNotRunnable(tid);
            }
            break;
          }
        }

        // Cross-op prefetch: per-thread op streams are thread-local,
        // so this thread's *next* op can be generated now — several
        // scheduler picks before it executes — and its shadow word
        // and private tag sets started toward host cache while other
        // threads' ops run in between. fetch() is idempotent and all
        // stock bodies tolerate early calls; bodies with call-order-
        // sensitive side effects opt out via nextIsPure(). Pure host
        // hints — no simulated state moves.
        if (tc.fetchAhead()) {
            // Staged ops were already hinted with two ops of lead
            // when fetchAhead2() generated them; re-hinting here
            // doubles prefetch traffic per op for no extra lead.
            const Op &nx = tc.current();
            if (!tc.currentWasStaged()
                && (nx.type == OpType::kRead
                    || nx.type == OpType::kWrite
                    || nx.type == OpType::kAtomicRmw)) {
                if (tool && ft != nullptr)
                    ft->shadow().prefetch(nx.addr);
                hier.prefetchAccess(core, nx.addr);
            }
            // Depth 2: with op n+1 staged, generate op n+2 as well.
            // At --scale>=4 working sets a shadow miss costs more
            // than a whole op executes, so one op of lead time is
            // not enough to hide it; two is. Same purity rules and
            // pure-host-hint guarantees as depth 1.
            if (tc.fetchAhead2()) {
                const Op &nx2 = tc.nextOp();
                if (nx2.type == OpType::kRead
                    || nx2.type == OpType::kWrite
                    || nx2.type == OpType::kAtomicRmw) {
                    if (tool && ft != nullptr)
                        ft->shadow().prefetch(nx2.addr);
                    hier.prefetchAccess(core, nx2.addr);
                }
            }
        }

        if (partial_countdown != 0 && --partial_countdown == 0) {
            partial_countdown = observer->interval_ops;
            if (observer->on_partial) {
                RunResult snapshot = result;
                finalize_into(snapshot);
                observer->on_partial(snapshot);
            }
        }
    }

    finalize_into(result);
    return result;
}

void
RunResult::dump(std::ostream &os) const
{
    os << "run.wall_cycles " << wall_cycles << '\n'
       << "run.total_ops " << total_ops << '\n'
       << "run.mem_accesses " << mem_accesses << '\n'
       << "run.reads " << reads << '\n'
       << "run.writes " << writes << '\n'
       << "run.sync_ops " << sync_ops << '\n'
       << "run.atomic_ops " << atomic_ops << '\n'
       << "run.work_ops " << work_ops << '\n'
       << "run.analyzed_accesses " << analyzed_accesses << '\n'
       << "run.analyzed_fraction " << analyzedFraction() << '\n'
       << "run.enables " << enables << '\n'
       << "run.disables " << disables << '\n'
       << "run.interrupts " << interrupts << '\n'
       << "run.pebs_captures " << pebs_captures << '\n'
       << "run.hitm_loads " << hitm_loads << '\n'
       << "run.hitm_transfers " << hitm_transfers << '\n'
       << "run.private_writebacks " << private_writebacks << '\n'
       << "run.gt_wr " << gt.wr << '\n'
       << "run.gt_ww " << gt.ww << '\n'
       << "run.gt_rw " << gt.rw << '\n'
       << "run.gt_shared_accesses " << gt.shared_accesses << '\n'
       << "run.races_unique " << reports.uniqueCount() << '\n'
       << "run.races_dynamic " << reports.dynamicCount() << '\n'
       << "run.mem_latency_mean " << mem_latency.mean() << '\n'
       << "run.mem_latency_p50 " << mem_latency.percentile(50)
       << '\n'
       << "run.mem_latency_p99 " << mem_latency.percentile(99)
       << '\n';
    for (std::size_t e = 0; e < pmu::kNumEventTypes; ++e) {
        os << "run.pmu." << pmu::eventName(
                static_cast<pmu::EventType>(e))
           << ' ' << pmu_totals[e] << '\n';
    }
    // Fault / failsafe blocks are emitted only when the features are
    // in use, so fault-free runs keep the frozen golden dump format.
    if (faults_active) {
        os << "run.fault.samples_seen " << faults.samples_seen << '\n'
           << "run.fault.dropped " << faults.dropped() << '\n'
           << "run.fault.drop_ratio " << faults.dropRatio() << '\n'
           << "run.fault.skid_added " << faults.skid_added << '\n'
           << "run.fault.skid_rms " << faults.skidRms() << '\n'
           << "run.fault.coalesced " << faults.coalesced << '\n'
           << "run.fault.throttled " << faults.throttled << '\n'
           << "run.fault.throttle_trips " << faults.throttle_trips
           << '\n'
           << "run.fault.corrupted_addrs " << faults.corrupted_addrs
           << '\n'
           << "run.fault.delivered " << faults.delivered << '\n'
           << "run.fault.suppressed_interrupts "
           << interrupts_suppressed << '\n';
    }
    if (failsafe_active) {
        os << "run.failsafe.mode "
           << demand::failsafeModeName(failsafe_mode) << '\n'
           << "run.failsafe.escalations " << escalations << '\n'
           << "run.failsafe.deescalations " << deescalations << '\n'
           << "run.failsafe.ignored_interrupts " << ignored_interrupts
           << '\n'
           << "run.failsafe.pebs_stale " << pebs_stale << '\n';
    }
}

} // namespace hdrd::runtime
