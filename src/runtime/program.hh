/**
 * @file
 * The Program abstraction: what the simulator executes.
 *
 * A Program is a factory of per-thread operation streams. Workload
 * models (Phoenix/PARSEC profiles, racey micro-kernels) implement this
 * interface; the simulator pulls operations lazily, so programs of
 * hundreds of millions of operations need no materialized trace.
 */

#ifndef HDRD_RUNTIME_PROGRAM_HH
#define HDRD_RUNTIME_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "runtime/op.hh"

namespace hdrd::runtime
{

/**
 * A lazily evaluated stream of operations for one thread.
 */
class ThreadBody
{
  public:
    virtual ~ThreadBody() = default;

    /**
     * Produce the next operation.
     * @return false when the thread has finished (op untouched).
     */
    virtual bool next(Op &op) = 0;

    /**
     * True when next() has no globally ordered side effects, i.e.
     * calling it early (before the scheduler would naturally reach
     * this thread again) is observationally equivalent. Bodies whose
     * next() appends to a shared, call-order-sensitive stream (trace
     * recording) must return false so the simulator skips its
     * fetch-ahead prefetch path for them.
     */
    virtual bool nextIsPure() const { return true; }
};

/**
 * Ground truth for one intentionally injected race: the set of
 * unordered static site pairs that constitute the race. A detector
 * "found" the race when it reported any one of the pairs. Accuracy
 * experiments score detectors on the fraction of injected races found.
 */
struct InjectedRace
{
    std::vector<std::pair<SiteId, SiteId>> pairs;
};

/**
 * A complete multithreaded program under test.
 */
class Program
{
  public:
    virtual ~Program() = default;

    /** Program name (registry key, report label). */
    virtual const std::string &name() const = 0;

    /** Number of threads (ids are dense, 0 = main). */
    virtual std::uint32_t numThreads() const = 0;

    /**
     * Build a fresh operation stream for thread @p tid. Called once
     * per run; bodies must not share mutable state.
     */
    virtual std::unique_ptr<ThreadBody> makeThread(ThreadId tid) = 0;

    /** Ground-truth injected races (empty when none). */
    virtual std::vector<InjectedRace> injectedRaces() const
    {
        return {};
    }

    /**
     * When true (default), all threads are started implicitly at time
     * zero with fork edges from thread 0, like a pthread_create loop
     * at the top of main. When false, threads other than 0 wait for an
     * explicit kThreadCreate.
     */
    virtual bool implicitStart() const { return true; }
};

} // namespace hdrd::runtime

#endif // HDRD_RUNTIME_PROGRAM_HH
