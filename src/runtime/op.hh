/**
 * @file
 * The simulated instruction set: operations emitted by thread bodies.
 */

#ifndef HDRD_RUNTIME_OP_HH
#define HDRD_RUNTIME_OP_HH

#include <cstdint>

#include "common/types.hh"

namespace hdrd::runtime
{

/** Operation kinds a simulated thread can execute. */
enum class OpType : std::uint8_t
{
    kRead = 0,      ///< data load: addr, site
    kWrite,         ///< data store: addr, site
    kWork,          ///< arg cycles of non-memory computation
    kLock,          ///< acquire mutex arg (blocks while held)
    kUnlock,        ///< release mutex arg
    kBarrier,       ///< arrive at barrier arg with arg2 participants
    kThreadCreate,  ///< start thread arg (explicit-start programs)
    kThreadJoin,    ///< block until thread arg finishes
    kAtomicRmw,     ///< seq_cst atomic read-modify-write: addr, site
    kAtomicWait,    ///< block until addr saw arg atomic RMWs (futex-
                    ///< style wait; acquire-ordering on wake)
    kRdLock,        ///< acquire rwlock arg for reading
    kRdUnlock,      ///< release a read hold of rwlock arg
    kWrLock,        ///< acquire rwlock arg for writing (exclusive)
    kWrUnlock,      ///< release the write hold of rwlock arg
};

/** Printable name for an OpType. */
const char *opTypeName(OpType type);

/**
 * One simulated operation.
 */
struct Op
{
    OpType type = OpType::kWork;

    /** Byte address for kRead/kWrite. */
    Addr addr = 0;

    /**
     * kWork: cycles of computation. kLock/kUnlock: mutex id.
     * kBarrier: barrier id. kThreadCreate/kThreadJoin: thread id.
     */
    std::uint64_t arg = 0;

    /** kBarrier: participant count (0 means every program thread). */
    std::uint32_t arg2 = 0;

    /** Static site id (reporting/ground truth); data accesses only. */
    SiteId site = kInvalidSite;

    static Op read(Addr addr, SiteId site)
    {
        return {OpType::kRead, addr, 0, 0, site};
    }

    static Op write(Addr addr, SiteId site)
    {
        return {OpType::kWrite, addr, 0, 0, site};
    }

    static Op work(std::uint64_t cycles)
    {
        return {OpType::kWork, 0, cycles, 0, kInvalidSite};
    }

    static Op lock(std::uint64_t mutex_id)
    {
        return {OpType::kLock, 0, mutex_id, 0, kInvalidSite};
    }

    static Op unlock(std::uint64_t mutex_id)
    {
        return {OpType::kUnlock, 0, mutex_id, 0, kInvalidSite};
    }

    static Op barrier(std::uint64_t barrier_id,
                      std::uint32_t participants = 0)
    {
        return {OpType::kBarrier, 0, barrier_id, participants,
                kInvalidSite};
    }

    static Op threadCreate(ThreadId tid)
    {
        return {OpType::kThreadCreate, 0, tid, 0, kInvalidSite};
    }

    static Op threadJoin(ThreadId tid)
    {
        return {OpType::kThreadJoin, 0, tid, 0, kInvalidSite};
    }

    static Op atomicRmw(Addr addr, SiteId site)
    {
        return {OpType::kAtomicRmw, addr, 0, 0, site};
    }

    static Op atomicWait(Addr addr, std::uint64_t threshold)
    {
        return {OpType::kAtomicWait, addr, threshold, 0,
                kInvalidSite};
    }

    static Op rdLock(std::uint64_t rwlock_id)
    {
        return {OpType::kRdLock, 0, rwlock_id, 0, kInvalidSite};
    }

    static Op rdUnlock(std::uint64_t rwlock_id)
    {
        return {OpType::kRdUnlock, 0, rwlock_id, 0, kInvalidSite};
    }

    static Op wrLock(std::uint64_t rwlock_id)
    {
        return {OpType::kWrLock, 0, rwlock_id, 0, kInvalidSite};
    }

    static Op wrUnlock(std::uint64_t rwlock_id)
    {
        return {OpType::kWrUnlock, 0, rwlock_id, 0, kInvalidSite};
    }

    /** True for plain (non-atomic) data accesses. */
    bool isMemAccess() const
    {
        return type == OpType::kRead || type == OpType::kWrite;
    }

    /**
     * True for the synchronization operations. Atomic RMWs count:
     * they order threads (and real detectors treat them as sync, not
     * as racy data accesses).
     */
    bool isSync() const
    {
        return type == OpType::kLock || type == OpType::kUnlock
            || type == OpType::kBarrier
            || type == OpType::kThreadCreate
            || type == OpType::kThreadJoin
            || type == OpType::kAtomicRmw
            || type == OpType::kAtomicWait
            || type == OpType::kRdLock || type == OpType::kRdUnlock
            || type == OpType::kWrLock || type == OpType::kWrUnlock;
    }
};

} // namespace hdrd::runtime

#endif // HDRD_RUNTIME_OP_HH
