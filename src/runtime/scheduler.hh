/**
 * @file
 * The thread scheduler: picks which runnable thread executes next.
 *
 * Default policy is "earliest core time first": among runnable
 * threads, run the one whose effective time (its core's cycle clock,
 * or its wake time if later) is smallest. This makes the interleaving
 * track simulated time like a discrete-event simulation — cores that
 * fall behind (e.g. because their threads run instrumented) naturally
 * interleave less often, reproducing how analysis perturbs real
 * schedules. An optional seeded jitter probability picks a uniformly
 * random runnable thread instead, for interleaving-variation studies.
 */

#ifndef HDRD_RUNTIME_SCHEDULER_HH
#define HDRD_RUNTIME_SCHEDULER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "runtime/thread_context.hh"

namespace hdrd::runtime
{

/**
 * Base interleaving policy. kEarliestFirst is the production default;
 * the alternatives exist for schedule-space exploration (the fuzz
 * harness draws a policy per iteration to vary interleavings far more
 * than jitter alone can).
 */
enum class SchedPolicy : std::uint8_t
{
    kEarliestFirst = 0,  ///< discrete-event: smallest effective time
    kRandom,             ///< uniformly random runnable thread
    kRoundRobin,         ///< circular tid order, time-oblivious
};

/** Printable name for a SchedPolicy. */
const char *schedPolicyName(SchedPolicy policy);

/**
 * Earliest-core-time-first scheduler with optional random jitter and
 * alternative exploration policies.
 */
class Scheduler
{
  public:
    /**
     * @param jitter probability of picking a uniformly random
     *        runnable thread instead of the policy's choice
     * @param rng seeded generator for jitter decisions
     * @param policy base interleaving policy
     */
    explicit Scheduler(double jitter = 0.0, Rng rng = Rng(1),
                       SchedPolicy policy =
                           SchedPolicy::kEarliestFirst);

    /**
     * Choose the next thread to run.
     *
     * Lives in the header so the simulator's per-op loop inlines the
     * default policy's scan; the queue-based large-T and exploration
     * policies stay out of line.
     *
     * @param contexts all thread contexts
     * @param core_cycles per-core cycle clocks
     * @return tid of the chosen runnable thread, or kInvalidThread
     *         when none is runnable.
     */
    ThreadId pick(const std::vector<ThreadContext> &contexts,
                  const std::vector<Cycle> &core_cycles)
    {
        const auto n = static_cast<ThreadId>(contexts.size());

        if (policy_ == SchedPolicy::kRandom
            || (jitter_ > 0.0 && rng_.nextBool(jitter_))) {
            return attached_ ? pickRandomAttached()
                             : pickRandom(contexts);
        }

        if (attached_) {
            if (policy_ == SchedPolicy::kRoundRobin)
                return pickRoundRobinAttached();
            // Small-size cutoff (cf. introsort): at a handful of
            // threads the O(T) scan below beats the queue walk's
            // constant factor, and both produce identical picks —
            // the queues stay maintained either way, so
            // random-policy picks and a later switch past the
            // cutoff see consistent state.
            if (nthreads_ > kScanCutoff)
                return pickEarliestAttached(core_cycles);
        }

        if (policy_ == SchedPolicy::kRoundRobin)
            return pickRoundRobinScan(contexts);

        // Earliest effective time wins; rotate the starting index so
        // same-time threads share the core fairly. Wrap-around
        // increments, not modulo: the circular walk is div-free.
        ThreadId best = kInvalidThread;
        Cycle best_time = ~Cycle{0};
        ThreadId t = rr_cursor_ % n;  // one div, not one per step
        for (ThreadId i = 0; i < n; ++i) {
            const ThreadContext &tc = contexts[t];
            if (tc.state() == ThreadState::kRunnable) {
                const Cycle when = effectiveTime(tc, core_cycles);
                if (when < best_time) {
                    best = t;
                    best_time = when;
                }
            }
            if (++t == n)
                t = 0;
        }
        if (best != kInvalidThread)
            rr_cursor_ = best + 1 == n ? 0 : best + 1;
        return best;
    }

    /** Effective time of a thread: max(core clock, resume time). */
    static Cycle effectiveTime(const ThreadContext &tc,
                               const std::vector<Cycle> &core_cycles)
    {
        const Cycle clock = core_cycles[tc.core()];
        const Cycle resume = tc.resumeTime();
        return clock > resume ? clock : resume;
    }

    /**
     * Switch to incremental queues, sized for @p contexts on
     * @p ncores. After attaching, the simulator reports every
     * runnable/not-runnable transition through onRunnable() /
     * onNotRunnable(), and pick() runs in O(cores * log threads)
     * instead of scanning every context. Picks are identical to the
     * scan implementation (same choices, same RNG draws, same
     * tie rotation); un-attached schedulers keep the O(T) scan.
     */
    void attach(const std::vector<ThreadContext> &contexts,
                std::uint32_t ncores);

    /** @p tid became runnable, resuming no earlier than @p resume. */
    void onRunnable(ThreadId tid, Cycle resume);

    /** @p tid blocked or finished. */
    void onNotRunnable(ThreadId tid);

    /** True when incremental queues are in use. */
    bool attached() const { return attached_; }

  private:
    /**
     * Attached earliest-first picks fall back to the O(T) context
     * scan at or below this many threads: the scan's tight loop
     * beats the per-core queue walk until T is well past typical
     * core counts. Picks are identical on both sides of the cutoff.
     */
    static constexpr ThreadId kScanCutoff = 16;

    ThreadId pickRandom(const std::vector<ThreadContext> &contexts);

    /** Round-robin over the raw contexts (un-attached fallback). */
    ThreadId pickRoundRobinScan(
        const std::vector<ThreadContext> &contexts);

    ThreadId pickEarliestAttached(
        const std::vector<Cycle> &core_cycles);
    ThreadId pickRoundRobinAttached();
    ThreadId pickRandomAttached();

    double jitter_;
    Rng rng_;
    SchedPolicy policy_;
    ThreadId rr_cursor_ = 0;  ///< tie-break / round-robin rotation

    /**
     * Incremental state (attached mode). Each core splits its
     * runnable threads into "ready" (resume time already covered by
     * the core clock: effective time == the clock, identical for all
     * of them) and "pending" (future resume: effective time == the
     * resume time), kept as sorted flat vectors so the earliest
     * candidate and the cursor's circular successor are binary
     * searches over a few contiguous bytes — far cheaper than tree
     * nodes at the handful of threads a core ever hosts. Keys are
     * monotone — core clocks only advance and resume times are fixed
     * at wake — so pending entries drain to ready at most once.
     */
    struct CoreQueue
    {
        std::vector<ThreadId> ready;                      ///< sorted
        std::vector<std::pair<Cycle, ThreadId>> pending;  ///< sorted
    };

    enum class Where : std::uint8_t
    {
        kNone = 0,
        kReady,
        kPending,
    };

    bool attached_ = false;
    ThreadId nthreads_ = 0;
    std::vector<CoreQueue> cores_;
    std::vector<CoreId> core_of_;
    std::vector<Where> where_;
    std::vector<Cycle> resume_of_;  ///< pending key, for erasure

    /** Every runnable tid, sorted (round-robin / random picks). */
    std::vector<ThreadId> runnable_;

    /**
     * Earliest-first re-pick memo. After a full pick, steady state is
     * "the same thread again": the winner's core clock advanced a
     * little, every other candidate is untouched. The memo records
     * the winner and the smallest effective time on the other cores;
     * the next pick returns the winner in O(1) while its clock stays
     * strictly below that bound (strictness defers all tie-breaking
     * to the full scan) and no thread changed runnability. Stale
     * bounds are safe: other cores' clocks only advance, so the
     * recorded minimum only underestimates — the check stays
     * sufficient, never permissive.
     */
    bool memo_valid_ = false;
    ThreadId memo_tid_ = kInvalidThread;
    CoreId memo_core_ = 0;
    Cycle memo_others_min_ = 0;
    std::vector<Cycle> core_min_;  ///< per-core candidate minimum

    /** Reused candidate buffer: random picks allocate nothing. */
    std::vector<ThreadId> scratch_;
};

} // namespace hdrd::runtime

#endif // HDRD_RUNTIME_SCHEDULER_HH
