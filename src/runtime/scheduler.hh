/**
 * @file
 * The thread scheduler: picks which runnable thread executes next.
 *
 * Default policy is "earliest core time first": among runnable
 * threads, run the one whose effective time (its core's cycle clock,
 * or its wake time if later) is smallest. This makes the interleaving
 * track simulated time like a discrete-event simulation — cores that
 * fall behind (e.g. because their threads run instrumented) naturally
 * interleave less often, reproducing how analysis perturbs real
 * schedules. An optional seeded jitter probability picks a uniformly
 * random runnable thread instead, for interleaving-variation studies.
 */

#ifndef HDRD_RUNTIME_SCHEDULER_HH
#define HDRD_RUNTIME_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "runtime/thread_context.hh"

namespace hdrd::runtime
{

/**
 * Base interleaving policy. kEarliestFirst is the production default;
 * the alternatives exist for schedule-space exploration (the fuzz
 * harness draws a policy per iteration to vary interleavings far more
 * than jitter alone can).
 */
enum class SchedPolicy : std::uint8_t
{
    kEarliestFirst = 0,  ///< discrete-event: smallest effective time
    kRandom,             ///< uniformly random runnable thread
    kRoundRobin,         ///< circular tid order, time-oblivious
};

/** Printable name for a SchedPolicy. */
const char *schedPolicyName(SchedPolicy policy);

/**
 * Earliest-core-time-first scheduler with optional random jitter and
 * alternative exploration policies.
 */
class Scheduler
{
  public:
    /**
     * @param jitter probability of picking a uniformly random
     *        runnable thread instead of the policy's choice
     * @param rng seeded generator for jitter decisions
     * @param policy base interleaving policy
     */
    explicit Scheduler(double jitter = 0.0, Rng rng = Rng(1),
                       SchedPolicy policy =
                           SchedPolicy::kEarliestFirst);

    /**
     * Choose the next thread to run.
     *
     * @param contexts all thread contexts
     * @param core_cycles per-core cycle clocks
     * @return tid of the chosen runnable thread, or kInvalidThread
     *         when none is runnable.
     */
    ThreadId pick(const std::vector<ThreadContext> &contexts,
                  const std::vector<Cycle> &core_cycles);

    /** Effective time of a thread: max(core clock, resume time). */
    static Cycle effectiveTime(const ThreadContext &tc,
                               const std::vector<Cycle> &core_cycles);

  private:
    ThreadId pickRandom(const std::vector<ThreadContext> &contexts);

    double jitter_;
    Rng rng_;
    SchedPolicy policy_;
    ThreadId rr_cursor_ = 0;  ///< tie-break / round-robin rotation
};

} // namespace hdrd::runtime

#endif // HDRD_RUNTIME_SCHEDULER_HH
