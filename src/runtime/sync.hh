/**
 * @file
 * Simulated synchronization objects: mutexes and barriers.
 *
 * SyncObjects models blocking semantics and wake timing only; the
 * happens-before consequences of these operations are applied by the
 * simulator through detect::SyncClocks.
 */

#ifndef HDRD_RUNTIME_SYNC_HH
#define HDRD_RUNTIME_SYNC_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace hdrd::runtime
{

/** A thread released from a block, and when it may resume. */
struct Wakeup
{
    ThreadId tid = kInvalidThread;
    Cycle when = 0;
};

/**
 * Mutexes and barriers, keyed by workload-chosen 64-bit ids.
 */
class SyncObjects
{
  public:
    /**
     * Attempt to acquire mutex @p id for @p tid at time @p now.
     * On failure the thread is queued as a waiter and must block.
     * @return true when the lock was taken.
     */
    bool tryLock(ThreadId tid, std::uint64_t id, Cycle now);

    /**
     * Release mutex @p id. Ownership passes to the oldest waiter, who
     * is returned for waking; the mutex frees when no one waits.
     * @pre @p tid owns the mutex.
     */
    std::optional<Wakeup> unlock(ThreadId tid, std::uint64_t id,
                                 Cycle now);

    /** Owner of mutex @p id (kInvalidThread when free). */
    ThreadId owner(std::uint64_t id) const;

    /**
     * Arrive at barrier @p id expecting @p expected participants.
     * The final arriver releases everyone.
     * @return when the barrier opens: every participant (including
     *         the final arriver) with the release time — the max
     *         arrival time across participants; nullopt while filling.
     */
    std::optional<std::vector<Wakeup>> arriveBarrier(
        ThreadId tid, std::uint64_t id, std::uint32_t expected,
        Cycle now);

    /** Threads currently parked at barrier @p id. */
    std::vector<ThreadId> barrierWaiters(std::uint64_t id) const;

    /**
     * Reader-writer lock operations. Writer-preference: new readers
     * queue behind any waiting writer. Like mutexes, grants hand off
     * at unlock time and the woken thread's retried lock op succeeds.
     */
    bool tryRdLock(ThreadId tid, std::uint64_t id, Cycle now);
    bool tryWrLock(ThreadId tid, std::uint64_t id, Cycle now);

    /** @return threads granted the lock (to wake), if any. */
    std::vector<Wakeup> rdUnlock(ThreadId tid, std::uint64_t id,
                                 Cycle now);
    std::vector<Wakeup> wrUnlock(ThreadId tid, std::uint64_t id,
                                 Cycle now);

    /** Current write holder of rwlock @p id (kInvalidThread if none). */
    ThreadId rwWriter(std::uint64_t id) const;

    /** Current read holders of rwlock @p id. */
    std::size_t rwReaders(std::uint64_t id) const;

    /**
     * One atomic RMW executed on atomic cell @p key at time @p now.
     * @return waiters whose thresholds are now satisfied.
     */
    std::vector<Wakeup> onAtomicRmw(std::uint64_t key, Cycle now);

    /**
     * Would an atomic wait for @p threshold RMWs on @p key pass now?
     */
    bool atomicSatisfied(std::uint64_t key,
                         std::uint64_t threshold) const;

    /** Park @p waiter until @p key has seen @p threshold RMWs. */
    void addAtomicWaiter(ThreadId waiter, std::uint64_t key,
                         std::uint64_t threshold);

    /** RMWs observed on atomic cell @p key (tests). */
    std::uint64_t atomicCount(std::uint64_t key) const;

    /**
     * Record that @p waiter blocks until thread @p target finishes.
     */
    void addJoinWaiter(ThreadId waiter, ThreadId target);

    /**
     * Thread @p target finished at @p now: collect every join waiter.
     */
    std::vector<Wakeup> onThreadFinished(ThreadId target, Cycle now);

    /** Any thread blocked on any object (deadlock diagnostics). */
    bool anyWaiters() const;

  private:
    struct Mutex
    {
        ThreadId owner = kInvalidThread;
        std::deque<ThreadId> waiters;
    };

    struct Barrier
    {
        std::uint32_t expected = 0;
        std::vector<ThreadId> arrived;
        Cycle max_arrival = 0;
    };

    struct AtomicCell
    {
        std::uint64_t rmw_count = 0;
        std::vector<std::pair<ThreadId, std::uint64_t>> waiters;
    };

    struct RwLock
    {
        ThreadId writer = kInvalidThread;
        std::vector<ThreadId> readers;

        /** FIFO of (tid, wants_write). */
        std::deque<std::pair<ThreadId, bool>> waiters;

        bool queued(ThreadId tid) const;
    };

    /** Grant as much of @p lock's queue as semantics allow. */
    static std::vector<Wakeup> grantRw(RwLock &lock, Cycle now);

    std::unordered_map<std::uint64_t, Mutex> mutexes_;
    std::unordered_map<std::uint64_t, RwLock> rwlocks_;
    std::unordered_map<std::uint64_t, Barrier> barriers_;
    std::unordered_map<std::uint64_t, AtomicCell> atomics_;
    std::unordered_map<ThreadId, std::vector<ThreadId>> join_waiters_;
};

} // namespace hdrd::runtime

#endif // HDRD_RUNTIME_SYNC_HH
