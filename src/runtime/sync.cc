#include "runtime/sync.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hdrd::runtime
{

bool
SyncObjects::tryLock(ThreadId tid, std::uint64_t id, Cycle now)
{
    (void)now;
    Mutex &mutex = mutexes_[id];
    if (mutex.owner == kInvalidThread) {
        mutex.owner = tid;
        return true;
    }
    // Direct handoff: unlock() transfers ownership to the oldest
    // waiter before it retries its lock op, so "already mine" means
    // the retry succeeds.
    if (mutex.owner == tid)
        return true;
    // Queue once: a blocked thread retries the same op after waking,
    // at which point ownership was already handed to it.
    if (std::find(mutex.waiters.begin(), mutex.waiters.end(), tid)
            == mutex.waiters.end()) {
        mutex.waiters.push_back(tid);
    }
    return false;
}

std::optional<Wakeup>
SyncObjects::unlock(ThreadId tid, std::uint64_t id, Cycle now)
{
    auto it = mutexes_.find(id);
    hdrdAssert(it != mutexes_.end() && it->second.owner == tid,
               "unlock of mutex ", id, " not owned by thread ", tid);
    Mutex &mutex = it->second;
    if (mutex.waiters.empty()) {
        mutex.owner = kInvalidThread;
        return std::nullopt;
    }
    // Direct handoff to the oldest waiter.
    const ThreadId next = mutex.waiters.front();
    mutex.waiters.pop_front();
    mutex.owner = next;
    return Wakeup{next, now};
}

ThreadId
SyncObjects::owner(std::uint64_t id) const
{
    auto it = mutexes_.find(id);
    return it == mutexes_.end() ? kInvalidThread : it->second.owner;
}

std::optional<std::vector<Wakeup>>
SyncObjects::arriveBarrier(ThreadId tid, std::uint64_t id,
                           std::uint32_t expected, Cycle now)
{
    hdrdAssert(expected >= 1, "barrier needs at least one participant");
    Barrier &barrier = barriers_[id];
    if (barrier.arrived.empty())
        barrier.expected = expected;
    hdrdAssert(barrier.expected == expected,
               "inconsistent participant count at barrier ", id);
    hdrdAssert(std::find(barrier.arrived.begin(), barrier.arrived.end(),
                         tid) == barrier.arrived.end(),
               "thread ", tid, " arrived twice at barrier ", id);
    barrier.arrived.push_back(tid);
    barrier.max_arrival = std::max(barrier.max_arrival, now);

    if (barrier.arrived.size() < barrier.expected)
        return std::nullopt;

    // Open: release every participant (including the final arriver,
    // whose clock may lag slower cores') at the max arrival time, then
    // reset for the next generation.
    std::vector<Wakeup> woken;
    for (ThreadId waiter : barrier.arrived)
        woken.push_back(Wakeup{waiter, barrier.max_arrival});
    barrier.arrived.clear();
    barrier.max_arrival = 0;
    return woken;
}

std::vector<ThreadId>
SyncObjects::barrierWaiters(std::uint64_t id) const
{
    auto it = barriers_.find(id);
    return it == barriers_.end() ? std::vector<ThreadId>{}
                                 : it->second.arrived;
}

bool
SyncObjects::RwLock::queued(ThreadId tid) const
{
    for (const auto &[waiter, wants_write] : waiters) {
        if (waiter == tid)
            return true;
    }
    return false;
}

std::vector<Wakeup>
SyncObjects::grantRw(RwLock &lock, Cycle now)
{
    std::vector<Wakeup> woken;
    for (;;) {
        if (lock.waiters.empty())
            break;
        const auto [tid, wants_write] = lock.waiters.front();
        if (wants_write) {
            // A writer goes next only when the lock is fully free,
            // and then nothing else is granted.
            if (lock.writer == kInvalidThread
                && lock.readers.empty()) {
                lock.waiters.pop_front();
                lock.writer = tid;
                woken.push_back(Wakeup{tid, now});
            }
            break;
        }
        // Readers are granted while no writer holds the lock; keep
        // draining consecutive readers.
        if (lock.writer != kInvalidThread)
            break;
        lock.waiters.pop_front();
        lock.readers.push_back(tid);
        woken.push_back(Wakeup{tid, now});
    }
    return woken;
}

bool
SyncObjects::tryRdLock(ThreadId tid, std::uint64_t id, Cycle now)
{
    (void)now;
    RwLock &lock = rwlocks_[id];
    // Handoff: the unlock path may have admitted us already.
    if (std::find(lock.readers.begin(), lock.readers.end(), tid)
            != lock.readers.end()) {
        return true;
    }
    // Writer-preference: queue behind any waiting writer.
    if (lock.writer == kInvalidThread && lock.waiters.empty()) {
        lock.readers.push_back(tid);
        return true;
    }
    if (!lock.queued(tid))
        lock.waiters.emplace_back(tid, false);
    return false;
}

bool
SyncObjects::tryWrLock(ThreadId tid, std::uint64_t id, Cycle now)
{
    (void)now;
    RwLock &lock = rwlocks_[id];
    if (lock.writer == tid)
        return true;  // handoff grant
    if (lock.writer == kInvalidThread && lock.readers.empty()
        && lock.waiters.empty()) {
        lock.writer = tid;
        return true;
    }
    if (!lock.queued(tid))
        lock.waiters.emplace_back(tid, true);
    return false;
}

std::vector<Wakeup>
SyncObjects::rdUnlock(ThreadId tid, std::uint64_t id, Cycle now)
{
    auto it = rwlocks_.find(id);
    hdrdAssert(it != rwlocks_.end(), "rd-unlock of unknown rwlock ",
               id);
    RwLock &lock = it->second;
    auto pos =
        std::find(lock.readers.begin(), lock.readers.end(), tid);
    hdrdAssert(pos != lock.readers.end(),
               "rd-unlock of rwlock ", id, " not read-held by thread ",
               tid);
    lock.readers.erase(pos);
    return grantRw(lock, now);
}

std::vector<Wakeup>
SyncObjects::wrUnlock(ThreadId tid, std::uint64_t id, Cycle now)
{
    auto it = rwlocks_.find(id);
    hdrdAssert(it != rwlocks_.end() && it->second.writer == tid,
               "wr-unlock of rwlock ", id,
               " not write-held by thread ", tid);
    it->second.writer = kInvalidThread;
    return grantRw(it->second, now);
}

ThreadId
SyncObjects::rwWriter(std::uint64_t id) const
{
    auto it = rwlocks_.find(id);
    return it == rwlocks_.end() ? kInvalidThread : it->second.writer;
}

std::size_t
SyncObjects::rwReaders(std::uint64_t id) const
{
    auto it = rwlocks_.find(id);
    return it == rwlocks_.end() ? 0 : it->second.readers.size();
}

std::vector<Wakeup>
SyncObjects::onAtomicRmw(std::uint64_t key, Cycle now)
{
    AtomicCell &cell = atomics_[key];
    ++cell.rmw_count;
    std::vector<Wakeup> woken;
    auto it = cell.waiters.begin();
    while (it != cell.waiters.end()) {
        if (it->second <= cell.rmw_count) {
            woken.push_back(Wakeup{it->first, now});
            it = cell.waiters.erase(it);
        } else {
            ++it;
        }
    }
    return woken;
}

bool
SyncObjects::atomicSatisfied(std::uint64_t key,
                             std::uint64_t threshold) const
{
    auto it = atomics_.find(key);
    const std::uint64_t count =
        it == atomics_.end() ? 0 : it->second.rmw_count;
    return count >= threshold;
}

void
SyncObjects::addAtomicWaiter(ThreadId waiter, std::uint64_t key,
                             std::uint64_t threshold)
{
    AtomicCell &cell = atomics_[key];
    for (const auto &[tid, th] : cell.waiters) {
        if (tid == waiter)
            return;  // retried while already parked
    }
    cell.waiters.emplace_back(waiter, threshold);
}

std::uint64_t
SyncObjects::atomicCount(std::uint64_t key) const
{
    auto it = atomics_.find(key);
    return it == atomics_.end() ? 0 : it->second.rmw_count;
}

void
SyncObjects::addJoinWaiter(ThreadId waiter, ThreadId target)
{
    join_waiters_[target].push_back(waiter);
}

std::vector<Wakeup>
SyncObjects::onThreadFinished(ThreadId target, Cycle now)
{
    std::vector<Wakeup> woken;
    auto it = join_waiters_.find(target);
    if (it == join_waiters_.end())
        return woken;
    for (ThreadId waiter : it->second)
        woken.push_back(Wakeup{waiter, now});
    join_waiters_.erase(it);
    return woken;
}

bool
SyncObjects::anyWaiters() const
{
    for (const auto &[id, mutex] : mutexes_) {
        if (!mutex.waiters.empty())
            return true;
    }
    for (const auto &[id, barrier] : barriers_) {
        if (!barrier.arrived.empty())
            return true;
    }
    for (const auto &[key, cell] : atomics_) {
        if (!cell.waiters.empty())
            return true;
    }
    for (const auto &[id, lock] : rwlocks_) {
        if (!lock.waiters.empty())
            return true;
    }
    return !join_waiters_.empty();
}

} // namespace hdrd::runtime
