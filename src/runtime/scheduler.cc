#include "runtime/scheduler.hh"

#include <algorithm>

namespace hdrd::runtime
{

namespace
{

/** Insert @p value into sorted vector @p v, keeping it sorted. */
template <typename T>
void
sortedInsert(std::vector<T> &v, const T &value)
{
    v.insert(std::lower_bound(v.begin(), v.end(), value), value);
}

/** Erase @p value from sorted vector @p v; it must be present. */
template <typename T>
void
sortedErase(std::vector<T> &v, const T &value)
{
    v.erase(std::lower_bound(v.begin(), v.end(), value));
}

} // namespace

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::kEarliestFirst:
        return "earliest";
      case SchedPolicy::kRandom:
        return "random";
      case SchedPolicy::kRoundRobin:
        return "rr";
    }
    return "?";
}

Scheduler::Scheduler(double jitter, Rng rng, SchedPolicy policy)
    : jitter_(jitter), rng_(rng), policy_(policy)
{
}

ThreadId
Scheduler::pickRandom(const std::vector<ThreadContext> &contexts)
{
    scratch_.clear();
    const auto n = static_cast<ThreadId>(contexts.size());
    for (ThreadId t = 0; t < n; ++t) {
        if (contexts[t].state() == ThreadState::kRunnable)
            scratch_.push_back(t);
    }
    if (scratch_.empty())
        return kInvalidThread;
    return scratch_[rng_.nextBounded(scratch_.size())];
}

void
Scheduler::attach(const std::vector<ThreadContext> &contexts,
                  std::uint32_t ncores)
{
    attached_ = true;
    nthreads_ = static_cast<ThreadId>(contexts.size());
    memo_valid_ = false;
    cores_.assign(ncores, CoreQueue{});
    core_min_.assign(ncores, ~Cycle{0});
    core_of_.resize(nthreads_);
    where_.assign(nthreads_, Where::kNone);
    resume_of_.assign(nthreads_, 0);
    runnable_.clear();
    scratch_.reserve(nthreads_);
    for (ThreadId t = 0; t < nthreads_; ++t) {
        core_of_[t] = contexts[t].core();
        if (contexts[t].state() == ThreadState::kRunnable)
            onRunnable(t, contexts[t].resumeTime());
    }
}

void
Scheduler::onRunnable(ThreadId tid, Cycle resume)
{
    memo_valid_ = false;
    CoreQueue &q = cores_[core_of_[tid]];
    if (where_[tid] == Where::kReady)
        sortedErase(q.ready, tid);
    else if (where_[tid] == Where::kPending)
        sortedErase(q.pending, {resume_of_[tid], tid});
    else
        sortedInsert(runnable_, tid);
    sortedInsert(q.pending, {resume, tid});
    resume_of_[tid] = resume;
    where_[tid] = Where::kPending;
}

void
Scheduler::onNotRunnable(ThreadId tid)
{
    if (where_[tid] == Where::kNone)
        return;
    memo_valid_ = false;
    CoreQueue &q = cores_[core_of_[tid]];
    if (where_[tid] == Where::kReady)
        sortedErase(q.ready, tid);
    else
        sortedErase(q.pending, {resume_of_[tid], tid});
    where_[tid] = Where::kNone;
    sortedErase(runnable_, tid);
}

ThreadId
Scheduler::pickEarliestAttached(const std::vector<Cycle> &core_cycles)
{
    // Steady-state fast path: hand the last winner its core again
    // while it is still strictly earliest (see memo_valid_'s doc).
    // Requires the winner to be its core's only ready thread, no
    // matured resume on that core, and a clock strictly below every
    // other core's candidate minimum; ties fall through to the full
    // scan so rotation fairness is untouched. The cursor already
    // sits at winner+1 from the full pick that set the memo.
    if (memo_valid_) {
        const CoreQueue &q = cores_[memo_core_];
        const Cycle clock = core_cycles[memo_core_];
        if (q.ready.size() == 1
            && (q.pending.empty()
                || q.pending.front().first > clock)
            && clock < memo_others_min_)
            return memo_tid_;
    }

    const ThreadId n = nthreads_;
    ThreadId best = kInvalidThread;
    Cycle best_time = ~Cycle{0};
    ThreadId best_dist = n;

    // Smallest effective time wins, ties broken by circular tid
    // distance from the cursor — exactly the cursor-rotated scan's
    // first-strictly-smaller choice. Distances are unique per tid,
    // so the outcome is independent of core visit order.
    const auto consider = [&](ThreadId cand, Cycle eff) {
        const ThreadId d = cand >= rr_cursor_
            ? cand - rr_cursor_
            : cand + n - rr_cursor_;
        if (best == kInvalidThread || eff < best_time
            || (eff == best_time && d < best_dist)) {
            best = cand;
            best_time = eff;
            best_dist = d;
        }
    };

    const auto ncores = static_cast<CoreId>(cores_.size());
    for (CoreId c = 0; c < ncores; ++c) {
        CoreQueue &q = cores_[c];
        const Cycle clock = core_cycles[c];
        core_min_[c] = ~Cycle{0};

        // Drain matured resumes: their effective time is the clock
        // now, like every other ready thread on this core.
        while (!q.pending.empty()
               && q.pending.front().first <= clock) {
            const ThreadId t = q.pending.front().second;
            q.pending.erase(q.pending.begin());
            sortedInsert(q.ready, t);
            where_[t] = Where::kReady;
        }

        if (!q.ready.empty()) {
            // All ready threads tie at the clock; only the cursor's
            // circular successor can win.
            const auto it = std::lower_bound(q.ready.begin(),
                                             q.ready.end(),
                                             rr_cursor_);
            consider(it != q.ready.end() ? *it : q.ready.front(),
                     clock);
            core_min_[c] = clock;
        }
        if (!q.pending.empty()) {
            const Cycle eff = q.pending.front().first;
            core_min_[c] = std::min(core_min_[c], eff);
            if (best == kInvalidThread || eff <= best_time) {
                // Circular successor among the equal-earliest
                // resumes (the only pending entries that can win).
                const auto ge = std::lower_bound(
                    q.pending.begin(), q.pending.end(),
                    std::pair<Cycle, ThreadId>{eff, rr_cursor_});
                const ThreadId cand =
                    (ge != q.pending.end() && ge->first == eff)
                        ? ge->second
                        : q.pending.front().second;
                consider(cand, eff);
            }
        }
    }

    if (best != kInvalidThread) {
        rr_cursor_ = (best + 1) % n;
        // Prime the fast path for the next pick.
        const CoreId bc = core_of_[best];
        const CoreQueue &bq = cores_[bc];
        memo_valid_ =
            bq.ready.size() == 1 && bq.ready.front() == best;
        memo_tid_ = best;
        memo_core_ = bc;
        Cycle others = ~Cycle{0};
        for (CoreId c = 0; c < ncores; ++c) {
            if (c != bc)
                others = std::min(others, core_min_[c]);
        }
        memo_others_min_ = others;
    } else {
        memo_valid_ = false;
    }
    return best;
}

ThreadId
Scheduler::pickRoundRobinAttached()
{
    if (runnable_.empty())
        return kInvalidThread;
    const auto it = std::lower_bound(runnable_.begin(),
                                     runnable_.end(), rr_cursor_);
    const ThreadId t = it != runnable_.end() ? *it
                                             : runnable_.front();
    rr_cursor_ = (t + 1) % nthreads_;
    return t;
}

ThreadId
Scheduler::pickRandomAttached()
{
    if (runnable_.empty())
        return kInvalidThread;
    // runnable_ is already the sorted candidate array the legacy scan
    // would have built: index it directly, no copy.
    return runnable_[rng_.nextBounded(runnable_.size())];
}

ThreadId
Scheduler::pickRoundRobinScan(
    const std::vector<ThreadContext> &contexts)
{
    // Next runnable thread in circular tid order, ignoring time.
    const auto n = static_cast<ThreadId>(contexts.size());
    ThreadId t = rr_cursor_ % n;
    for (ThreadId i = 0; i < n; ++i) {
        if (contexts[t].state() == ThreadState::kRunnable) {
            rr_cursor_ = t + 1 == n ? 0 : t + 1;
            return t;
        }
        if (++t == n)
            t = 0;
    }
    return kInvalidThread;
}

} // namespace hdrd::runtime
