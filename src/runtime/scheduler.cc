#include "runtime/scheduler.hh"

#include <algorithm>

namespace hdrd::runtime
{

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::kEarliestFirst:
        return "earliest";
      case SchedPolicy::kRandom:
        return "random";
      case SchedPolicy::kRoundRobin:
        return "rr";
    }
    return "?";
}

Scheduler::Scheduler(double jitter, Rng rng, SchedPolicy policy)
    : jitter_(jitter), rng_(rng), policy_(policy)
{
}

Cycle
Scheduler::effectiveTime(const ThreadContext &tc,
                         const std::vector<Cycle> &core_cycles)
{
    return std::max(core_cycles[tc.core()], tc.resumeTime());
}

ThreadId
Scheduler::pickRandom(const std::vector<ThreadContext> &contexts)
{
    std::vector<ThreadId> runnable;
    const auto n = static_cast<ThreadId>(contexts.size());
    for (ThreadId t = 0; t < n; ++t) {
        if (contexts[t].state() == ThreadState::kRunnable)
            runnable.push_back(t);
    }
    if (runnable.empty())
        return kInvalidThread;
    return runnable[rng_.nextBounded(runnable.size())];
}

ThreadId
Scheduler::pick(const std::vector<ThreadContext> &contexts,
                const std::vector<Cycle> &core_cycles)
{
    const auto n = static_cast<ThreadId>(contexts.size());

    if (policy_ == SchedPolicy::kRandom
        || (jitter_ > 0.0 && rng_.nextBool(jitter_))) {
        return pickRandom(contexts);
    }

    if (policy_ == SchedPolicy::kRoundRobin) {
        // Next runnable thread in circular tid order, ignoring time.
        for (ThreadId i = 0; i < n; ++i) {
            const ThreadId t = (rr_cursor_ + i) % n;
            if (contexts[t].state() == ThreadState::kRunnable) {
                rr_cursor_ = (t + 1) % n;
                return t;
            }
        }
        return kInvalidThread;
    }

    // Earliest effective time wins; rotate the starting index so
    // same-time threads share the core fairly.
    ThreadId best = kInvalidThread;
    Cycle best_time = ~Cycle{0};
    for (ThreadId i = 0; i < n; ++i) {
        const ThreadId t = (rr_cursor_ + i) % n;
        const ThreadContext &tc = contexts[t];
        if (tc.state() != ThreadState::kRunnable)
            continue;
        const Cycle when = effectiveTime(tc, core_cycles);
        if (when < best_time) {
            best = t;
            best_time = when;
        }
    }
    if (best != kInvalidThread)
        rr_cursor_ = (best + 1) % n;
    return best;
}

} // namespace hdrd::runtime
