#include "runtime/scheduler.hh"

#include <algorithm>

namespace hdrd::runtime
{

Scheduler::Scheduler(double jitter, Rng rng)
    : jitter_(jitter), rng_(rng)
{
}

Cycle
Scheduler::effectiveTime(const ThreadContext &tc,
                         const std::vector<Cycle> &core_cycles)
{
    return std::max(core_cycles[tc.core()], tc.resumeTime());
}

ThreadId
Scheduler::pick(const std::vector<ThreadContext> &contexts,
                const std::vector<Cycle> &core_cycles)
{
    const auto n = static_cast<ThreadId>(contexts.size());

    if (jitter_ > 0.0 && rng_.nextBool(jitter_)) {
        // Uniform pick among runnable threads.
        std::vector<ThreadId> runnable;
        for (ThreadId t = 0; t < n; ++t) {
            if (contexts[t].state() == ThreadState::kRunnable)
                runnable.push_back(t);
        }
        if (!runnable.empty())
            return runnable[rng_.nextBounded(runnable.size())];
        return kInvalidThread;
    }

    // Earliest effective time wins; rotate the starting index so
    // same-time threads share the core fairly.
    ThreadId best = kInvalidThread;
    Cycle best_time = ~Cycle{0};
    for (ThreadId i = 0; i < n; ++i) {
        const ThreadId t = (rr_cursor_ + i) % n;
        const ThreadContext &tc = contexts[t];
        if (tc.state() != ThreadState::kRunnable)
            continue;
        const Cycle when = effectiveTime(tc, core_cycles);
        if (when < best_time) {
            best = t;
            best_time = when;
        }
    }
    if (best != kInvalidThread)
        rr_cursor_ = (best + 1) % n;
    return best;
}

} // namespace hdrd::runtime
