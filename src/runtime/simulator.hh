/**
 * @file
 * The Simulator: executes a Program on the modelled platform under a
 * chosen analysis regime and reports what happened.
 *
 * This is the integration point of every substrate:
 *   - runtime: threads, scheduler, sync objects;
 *   - mem: the MESI hierarchy that generates HITM events;
 *   - pmu: counters sampling those events, delivering interrupts;
 *   - detect: always-on sync clocks + demand-gated per-access analysis;
 *   - demand: the enable/disable state machine;
 *   - instr: the cycle cost model that turns regimes into slowdowns.
 */

#ifndef HDRD_RUNTIME_SIMULATOR_HH
#define HDRD_RUNTIME_SIMULATOR_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "common/histogram.hh"
#include "common/types.hh"
#include "demand/controller.hh"
#include "demand/strategy.hh"
#include "detect/report.hh"
#include "detect/shadow.hh"
#include "instr/cost_model.hh"
#include "mem/hierarchy.hh"
#include "pmu/event.hh"
#include "pmu/faults.hh"
#include "runtime/scheduler.hh"

namespace hdrd::runtime
{

class Program;

/** Ground-truth inter-thread sharing counts (word granularity). */
struct GroundTruthStats
{
    /** Reads of data last written by another thread. */
    std::uint64_t wr = 0;

    /** Writes over data last written by another thread. */
    std::uint64_t ww = 0;

    /** Writes to data read by another thread since its last write. */
    std::uint64_t rw = 0;

    /** Accesses participating in any inter-thread sharing. */
    std::uint64_t shared_accesses = 0;
};

/** Which per-access race-detection algorithm runs behind the gate. */
enum class DetectorKind : std::uint8_t
{
    kFastTrack = 0,  ///< epoch-adaptive (Inspector/FastTrack class)
    kNaiveHb,        ///< full-vector-clock DJIT+ (reference oracle)
    kLockset,        ///< Eraser-style lockset (baseline comparison)
};

/** Simulation configuration: platform, regime, gating, bookkeeping. */
struct SimConfig
{
    mem::HierarchyConfig mem;
    instr::CostModel cost;
    instr::ToolMode mode = instr::ToolMode::kContinuous;
    demand::GatingConfig gating;

    /**
     * Hardware-signal fault injection (default: pass-through). When
     * no fault is configured the model is never consulted and the
     * run is byte-identical to a fault-free build.
     */
    pmu::FaultConfig faults;

    /** Detection algorithm used for analyzed accesses. */
    DetectorKind detector = DetectorKind::kFastTrack;

    /** log2 bytes of the race-detection granule. */
    std::uint32_t granule_shift = 3;

    /** Seed for every random decision in the run. */
    std::uint64_t seed = 1;

    /** Probability of a random scheduler pick (0 = deterministic). */
    double sched_jitter = 0.0;

    /** Base interleaving policy (seeded; see SchedPolicy). */
    SchedPolicy sched_policy = SchedPolicy::kEarliestFirst;

    /**
     * Track ground-truth sharing per access. Costs memory proportional
     * to the touched word count; forced on by the oracle strategy.
     */
    bool track_ground_truth = false;

    /** Run hierarchy invariant checks every N accesses (0 = never). */
    std::uint64_t invariant_check_interval = 0;

    /**
     * Threads mapped per core: 1 pins thread t to core t mod ncores;
     * 2 models SMT siblings sharing a private cache (no HITMs between
     * them — one of the paper's accuracy caveats).
     */
    std::uint32_t threads_per_core = 1;
};

/** Everything measured during one run. */
struct RunResult
{
    /** Wall time: max over per-core cycle clocks. */
    Cycle wall_cycles = 0;

    std::uint64_t total_ops = 0;
    std::uint64_t mem_accesses = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t sync_ops = 0;
    std::uint64_t work_ops = 0;

    /** Atomic RMW operations (ordered, never analyzed as data). */
    std::uint64_t atomic_ops = 0;

    /** Accesses that ran through the race detector. */
    std::uint64_t analyzed_accesses = 0;

    /** Demand-driven transitions and interrupts. */
    std::uint64_t enables = 0;
    std::uint64_t disables = 0;
    std::uint64_t interrupts = 0;

    /** Triggering accesses retroactively analyzed via PEBS capture. */
    std::uint64_t pebs_captures = 0;

    /** PEBS captures skipped by the staleness bound. */
    std::uint64_t pebs_stale = 0;

    /**
     * Fault-injection accounting; dumped only when faults_active so
     * fault-free runs keep the frozen golden dump format.
     */
    bool faults_active = false;
    pmu::FaultStats faults;
    std::uint64_t interrupts_suppressed = 0;

    /** Failsafe/hysteresis accounting; dumped when failsafe_active. */
    bool failsafe_active = false;
    demand::FailsafeMode failsafe_mode = demand::FailsafeMode::kDemand;
    std::uint64_t escalations = 0;
    std::uint64_t deescalations = 0;
    std::uint64_t ignored_interrupts = 0;

    /** Hierarchy-level sharing events. */
    std::uint64_t hitm_loads = 0;
    std::uint64_t hitm_transfers = 0;
    std::uint64_t private_writebacks = 0;

    /** Free-running PMU totals per event type. */
    std::array<std::uint64_t, pmu::kNumEventTypes> pmu_totals{};

    GroundTruthStats gt;

    /** Distribution of memory-access service latencies. */
    Log2Histogram mem_latency;

    /** Race reports (site-pair deduplicated). */
    detect::ReportSink reports;

    /** Enable/disable transition history with access indices. */
    std::vector<demand::Transition> transitions;

    /** Fraction of data accesses analyzed. */
    double analyzedFraction() const
    {
        return mem_accesses == 0
            ? 0.0
            : static_cast<double>(analyzed_accesses)
                / static_cast<double>(mem_accesses);
    }

    /** Fraction of data accesses participating in sharing. */
    double sharingFraction() const
    {
        return mem_accesses == 0
            ? 0.0
            : static_cast<double>(gt.shared_accesses)
                / static_cast<double>(mem_accesses);
    }

    /**
     * Machine-readable "key value" dump of every measurement (one
     * per line), gem5-stats style.
     */
    void dump(std::ostream &os) const;
};

/**
 * Optional observation hooks for a run in flight (streaming jobs).
 *
 * Partials: every @p interval_ops executed operations the simulator
 * snapshots the accumulated RunResult, finalizes the copy exactly
 * like the end-of-run result, and hands it to @p on_partial. The
 * trigger counts executed ops — a pure function of (program, config)
 * — so partial N of a given job is byte-stable across runs, and each
 * snapshot is a prefix-consistent view of the final result (race
 * reports appear in discovery order; a partial's list is a prefix of
 * the final list).
 *
 * Cancellation: @p cancel is polled each iteration, and also breaks
 * the no-runnable-thread deadlock panic — a cancelled program whose
 * blocked threads will never be woken (a streaming session aborted
 * mid-upload) unwinds cleanly instead of killing the process. After
 * a cancelled run @p cancelled is set and the result is meaningless.
 */
struct RunObserver
{
    /** Emit a partial snapshot every N executed ops (0 = never). */
    std::uint64_t interval_ops = 0;

    /** Called with each finalized partial snapshot. */
    std::function<void(const RunResult &)> on_partial;

    /** When set and true, the run unwinds at the next check. */
    const std::atomic<bool> *cancel = nullptr;

    /** Out: the run ended through cancellation, not completion. */
    bool cancelled = false;
};

/**
 * Executes Programs under a fixed SimConfig. Logically stateless
 * between runs: every run() builds a fresh platform. The FastTrack
 * shadow memory is the one piece of *storage* that persists — each
 * run borrows it after a recycling reset, so a long-lived engine
 * (one per service worker) reuses chunk pages and pooled clocks
 * across jobs instead of rebuilding them from the allocator.
 */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);

    /**
     * Execute @p program to completion and report. Internally
     * dispatches to a per-ToolMode specialization of the main loop
     * so regime checks constant-fold out of the access path.
     * @param observer optional partial-report/cancel hooks; null
     *        keeps the loop on its unobserved fast path.
     */
    RunResult run(Program &program, RunObserver *observer = nullptr);

    /** Configuration in force. */
    const SimConfig &config() const { return config_; }

    /**
     * Re-arm this engine with a new configuration between runs.
     * run() builds the platform fresh each time, so a long-lived
     * engine (one per hdrd_served worker) serves back-to-back jobs
     * with different regimes/seeds with no state bleeding across
     * them — same validation as construction.
     */
    void reconfigure(const SimConfig &config);

    /** One-shot convenience wrapper. */
    static RunResult runWith(Program &program, const SimConfig &config)
    {
        Simulator sim(config);
        return sim.run(program);
    }

  private:
    /** The main loop, specialized per analysis regime. */
    template <instr::ToolMode kMode>
    RunResult runImpl(Program &program, RunObserver *observer);

    SimConfig config_;

    /** Persistent FastTrack shadow scratch, recycled per run. */
    detect::ShadowMemory ft_shadow_;
};

} // namespace hdrd::runtime

#endif // HDRD_RUNTIME_SIMULATOR_HH
