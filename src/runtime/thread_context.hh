/**
 * @file
 * Per-thread execution state inside the simulator.
 */

#ifndef HDRD_RUNTIME_THREAD_CONTEXT_HH
#define HDRD_RUNTIME_THREAD_CONTEXT_HH

#include <memory>

#include "common/logging.hh"
#include "common/types.hh"
#include "runtime/op.hh"
#include "runtime/program.hh"

namespace hdrd::runtime
{

/** Lifecycle state of a simulated thread. */
enum class ThreadState : std::uint8_t
{
    kNotStarted = 0,  ///< waiting for an explicit kThreadCreate
    kRunnable,
    kBlocked,         ///< waiting on a mutex, barrier, or join
    kFinished,
};

/**
 * One simulated thread: its operation stream, scheduling state, and
 * the op it is currently trying to execute.
 */
class ThreadContext
{
  public:
    ThreadContext(ThreadId tid, CoreId core,
                  std::unique_ptr<ThreadBody> body,
                  ThreadState initial_state);

    ThreadId tid() const { return tid_; }
    CoreId core() const { return core_; }

    ThreadState state() const { return state_; }
    void setState(ThreadState state) { state_ = state; }

    /**
     * The operation currently being executed or retried.
     * @pre hasOp()
     */
    const Op &current() const
    {
        hdrdAssert(has_op_, "current() without a fetched op");
        return current_;
    }

    /** True when an op has been fetched and not yet consumed. */
    bool hasOp() const { return has_op_; }

    /**
     * Fetch the next op from the body if none is pending. Ops staged
     * early by fetchAhead2() drain first, preserving stream order.
     * @return false when the body is exhausted (thread should finish).
     */
    bool fetch()
    {
        if (has_op_)
            return true;
        if (has_next_) {
            current_ = next_;
            has_next_ = false;
            has_op_ = true;
            current_staged_ = true;
            return true;
        }
        if (!body_->next(current_))
            return false;
        has_op_ = true;
        current_staged_ = false;
        return true;
    }

    /**
     * True when current() arrived via fetchAhead2() staging — its
     * prefetch already went out with two ops of lead, so the depth-1
     * rung must not re-issue it (double-hinting every op measurably
     * costs more than the extra lead buys).
     */
    bool currentWasStaged() const { return current_staged_; }

    /**
     * fetch(), but only when the body declared next() pure: used by
     * the simulator's cross-op prefetch to pull the next op early
     * without perturbing call-order-sensitive bodies (trace
     * recording). fetch() is idempotent, so the later mandatory
     * fetch() just sees the op already staged.
     * @return true when an op is staged for inspection.
     */
    bool fetchAhead()
    {
        return next_is_pure_ && fetch();
    }

    /**
     * Stage op n+2 while op n+1 sits fetched: the second rung of the
     * simulator's cross-op prefetch ladder, so shadow/cache lines two
     * ops out start their miss while op n executes. Pure-body only,
     * like fetchAhead().
     * @return true when a second op is staged (see nextOp()).
     */
    bool fetchAhead2()
    {
        if (has_next_)
            return true;
        if (!next_is_pure_ || !has_op_)
            return false;
        if (!body_->next(next_))
            return false;
        has_next_ = true;
        return true;
    }

    /**
     * The op staged by fetchAhead2(), one past current().
     * @pre fetchAhead2() returned true
     */
    const Op &nextOp() const
    {
        hdrdAssert(has_next_, "nextOp() without a staged op");
        return next_;
    }

    /** Mark the current op executed; the next fetch() advances. */
    void consume()
    {
        hdrdAssert(has_op_, "consume() without a fetched op");
        has_op_ = false;
        ++ops_executed_;
    }

    /**
     * Earliest cycle this thread may run again (set when woken from a
     * block; the waker's cycle time at wake).
     */
    Cycle resumeTime() const { return resume_time_; }
    void setResumeTime(Cycle cycle) { resume_time_ = cycle; }

    /** Count of operations this thread has consumed. */
    std::uint64_t opsExecuted() const { return ops_executed_; }

  private:
    ThreadId tid_;
    CoreId core_;
    std::unique_ptr<ThreadBody> body_;
    bool next_is_pure_ = true;
    ThreadState state_;
    Op current_{};
    bool has_op_ = false;
    Op next_{};
    bool has_next_ = false;
    bool current_staged_ = false;
    Cycle resume_time_ = 0;
    std::uint64_t ops_executed_ = 0;
};

} // namespace hdrd::runtime

#endif // HDRD_RUNTIME_THREAD_CONTEXT_HH
