/**
 * @file
 * Per-thread execution state inside the simulator.
 */

#ifndef HDRD_RUNTIME_THREAD_CONTEXT_HH
#define HDRD_RUNTIME_THREAD_CONTEXT_HH

#include <memory>

#include "common/logging.hh"
#include "common/types.hh"
#include "runtime/op.hh"
#include "runtime/program.hh"

namespace hdrd::runtime
{

/** Lifecycle state of a simulated thread. */
enum class ThreadState : std::uint8_t
{
    kNotStarted = 0,  ///< waiting for an explicit kThreadCreate
    kRunnable,
    kBlocked,         ///< waiting on a mutex, barrier, or join
    kFinished,
};

/**
 * One simulated thread: its operation stream, scheduling state, and
 * the op it is currently trying to execute.
 */
class ThreadContext
{
  public:
    ThreadContext(ThreadId tid, CoreId core,
                  std::unique_ptr<ThreadBody> body,
                  ThreadState initial_state);

    ThreadId tid() const { return tid_; }
    CoreId core() const { return core_; }

    ThreadState state() const { return state_; }
    void setState(ThreadState state) { state_ = state; }

    /**
     * The operation currently being executed or retried.
     * @pre hasOp()
     */
    const Op &current() const
    {
        hdrdAssert(has_op_, "current() without a fetched op");
        return current_;
    }

    /** True when an op has been fetched and not yet consumed. */
    bool hasOp() const { return has_op_; }

    /**
     * Fetch the next op from the body if none is pending.
     * @return false when the body is exhausted (thread should finish).
     */
    bool fetch()
    {
        if (has_op_)
            return true;
        if (!body_->next(current_))
            return false;
        has_op_ = true;
        return true;
    }

    /**
     * fetch(), but only when the body declared next() pure: used by
     * the simulator's cross-op prefetch to pull the next op early
     * without perturbing call-order-sensitive bodies (trace
     * recording). fetch() is idempotent, so the later mandatory
     * fetch() just sees the op already staged.
     * @return true when an op is staged for inspection.
     */
    bool fetchAhead()
    {
        return next_is_pure_ && fetch();
    }

    /** Mark the current op executed; the next fetch() advances. */
    void consume()
    {
        hdrdAssert(has_op_, "consume() without a fetched op");
        has_op_ = false;
        ++ops_executed_;
    }

    /**
     * Earliest cycle this thread may run again (set when woken from a
     * block; the waker's cycle time at wake).
     */
    Cycle resumeTime() const { return resume_time_; }
    void setResumeTime(Cycle cycle) { resume_time_ = cycle; }

    /** Count of operations this thread has consumed. */
    std::uint64_t opsExecuted() const { return ops_executed_; }

  private:
    ThreadId tid_;
    CoreId core_;
    std::unique_ptr<ThreadBody> body_;
    bool next_is_pure_ = true;
    ThreadState state_;
    Op current_{};
    bool has_op_ = false;
    Cycle resume_time_ = 0;
    std::uint64_t ops_executed_ = 0;
};

} // namespace hdrd::runtime

#endif // HDRD_RUNTIME_THREAD_CONTEXT_HH
