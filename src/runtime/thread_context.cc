#include "runtime/thread_context.hh"

#include "common/logging.hh"

namespace hdrd::runtime
{

ThreadContext::ThreadContext(ThreadId tid, CoreId core,
                             std::unique_ptr<ThreadBody> body,
                             ThreadState initial_state)
    : tid_(tid), core_(core), body_(std::move(body)),
      state_(initial_state)
{
    hdrdAssert(body_ != nullptr, "ThreadContext needs a body");
}

const Op &
ThreadContext::current() const
{
    hdrdAssert(has_op_, "current() without a fetched op");
    return current_;
}

bool
ThreadContext::fetch()
{
    if (has_op_)
        return true;
    if (!body_->next(current_))
        return false;
    has_op_ = true;
    return true;
}

void
ThreadContext::consume()
{
    hdrdAssert(has_op_, "consume() without a fetched op");
    has_op_ = false;
    ++ops_executed_;
}

} // namespace hdrd::runtime
