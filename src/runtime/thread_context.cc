#include "runtime/thread_context.hh"

#include "common/logging.hh"

namespace hdrd::runtime
{

ThreadContext::ThreadContext(ThreadId tid, CoreId core,
                             std::unique_ptr<ThreadBody> body,
                             ThreadState initial_state)
    : tid_(tid), core_(core), body_(std::move(body)),
      state_(initial_state)
{
    hdrdAssert(body_ != nullptr, "ThreadContext needs a body");
    next_is_pure_ = body_->nextIsPure();
}

} // namespace hdrd::runtime
