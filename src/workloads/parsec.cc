#include "workloads/parsec.hh"

#include "workloads/synthetic.hh"

namespace hdrd::workloads
{

namespace
{

/** Per-thread accesses at scale 1.0. */
constexpr std::uint64_t kBaseN = 120000;

/**
 * A stepped software pipeline: thread i consumes what thread i-1
 * produced last step and produces for thread i+1, with a global
 * barrier per step keeping the handoffs happens-before ordered. The
 * W->R handoff traffic (consumers reading lines the producer left
 * Modified) is the HITM-rich pattern that keeps demand-driven
 * analysis enabled on PARSEC pipelines.
 *
 * @param steps pipeline steps (more steps = more frequent sharing)
 * @param work_per_access interleaved compute cycles per stage access
 */
void
buildPipeline(Builder &b, const WorkloadParams &params,
              std::uint64_t steps, std::uint64_t buffer_bytes,
              std::uint64_t work_ops_per_step,
              std::uint32_t inject_at_step,
              double private_ratio = 0.0)
{
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);
    const std::uint64_t per_step =
        std::max<std::uint64_t>(N / steps, 16);
    const auto private_per_step = static_cast<std::uint64_t>(
        static_cast<double>(per_step) * private_ratio);

    // handoff[i]: buffer produced by thread i, consumed by i+1.
    std::vector<Region> handoff;
    handoff.reserve(T);
    std::vector<Region> scratch;
    for (std::uint32_t i = 0; i < T; ++i) {
        handoff.push_back(b.alloc(buffer_bytes));
        scratch.push_back(b.alloc(128 * 1024));
    }

    constexpr std::uint32_t kChunks = 4;
    for (std::uint64_t step = 0; step < steps; ++step) {
        for (ThreadId t = 0; t < T; ++t) {
            const auto produce_idx =
                static_cast<std::uint32_t>(step % kChunks);
            const auto consume_idx = static_cast<std::uint32_t>(
                (step + kChunks - 1) % kChunks);
            if (t > 0 && step > 0) {
                // Consume the chunk the upstream thread wrote last
                // step (ordered by the intervening barrier); upstream
                // is concurrently writing a *different* chunk.
                const Region in =
                    handoff[t - 1].slice(consume_idx, kChunks);
                b.sweep(t, in, per_step / 2, 0.0, false, 8);
            }
            if (work_ops_per_step > 0)
                b.compute(t, work_ops_per_step, 10);
            if (private_per_step > 0) {
                // Stage-local processing between the handoffs: the
                // coarse-pipeline case where analysis can switch off
                // inside a step.
                b.sweep(t, scratch[t], private_per_step, 0.4, true);
            }
            if (t + 1 < T) {
                const Region out =
                    handoff[t].slice(produce_idx, kChunks);
                b.sweep(t, out, per_step / 2, 1.0, false, 8);
            }
        }
        if (step == inject_at_step)
            injectConfiguredRaces(b, params);
        b.barrierAll(b.newBarrier());
    }
}

} // namespace

std::unique_ptr<runtime::Program>
makeBlackscholes(const WorkloadParams &params)
{
    Builder b("parsec.blackscholes", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);
    constexpr int kIters = 5;

    const Region options = b.alloc(4 * 1024 * 1024);
    for (int iter = 0; iter < kIters; ++iter) {
        for (ThreadId t = 0; t < T; ++t) {
            const Region slice = options.slice(t, T);
            b.sweep(t, slice, N / (kIters + 1), 0.2, false, 8);
            b.compute(t, N / 600, 12);
        }
        if (iter == 1)
            injectConfiguredRaces(b, params);
        b.barrierAll(b.newBarrier());
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeBodytrack(const WorkloadParams &params)
{
    Builder b("parsec.bodytrack", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);
    constexpr int kFrames = 6;

    const Region frames = b.alloc(4 * 1024 * 1024);
    const Region model = b.alloc(256 * 1024);
    const std::uint64_t model_lock = b.newLock();

    for (int frame = 0; frame < kFrames; ++frame) {
        // Evaluation sub-phase: reread the model the pool rewrote
        // last frame (W->R sharing); no model writes yet, so the
        // unlocked reads are race-free.
        for (ThreadId t = 0; t < T; ++t) {
            const Region slice = frames.slice(t, T);
            b.sweep(t, model, 600, 0.0, true);
            b.sweep(t, slice, N / (kFrames + 2), 0.05, false, 8);
        }
        if (frame == 1)
            injectConfiguredRaces(b, params);
        b.barrierAll(b.newBarrier());
        // Resample sub-phase: locked model updates.
        for (ThreadId t = 0; t < T; ++t)
            b.lockedRmw(t, model, 120, model_lock, true);
        b.barrierAll(b.newBarrier());
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeCanneal(const WorkloadParams &params)
{
    Builder b("parsec.canneal", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);

    // A large shared netlist, partitioned into ranges each guarded by
    // its own lock: random swap traffic touches everyone's ranges, so
    // nearly every access is inter-thread shared and eviction-prone.
    const Region netlist = b.alloc(8 * 1024 * 1024);
    constexpr std::uint32_t kRanges = 8;
    std::vector<std::uint64_t> locks;
    for (std::uint32_t r = 0; r < kRanges; ++r)
        locks.push_back(b.newLock());

    // Inject at the aligned start: canneal's dense cross-thread lock
    // traffic would otherwise accidentally order later racy bursts
    // through lock-chain happens-before edges.
    injectConfiguredRaces(b, params);

    constexpr int kRounds = 4;
    for (int round = 0; round < kRounds; ++round) {
        for (ThreadId t = 0; t < T; ++t) {
            for (std::uint32_t r = 0; r < kRanges; ++r) {
                const Region range = netlist.slice(r, kRanges);
                b.lockedRmw(t, range,
                            N / (kRounds * kRanges * 3), locks[r],
                            true, 6);
            }
        }
    }
    b.barrierAll(b.newBarrier());
    return b.build();
}

std::unique_ptr<runtime::Program>
makeDedup(const WorkloadParams &params)
{
    Builder b("parsec.dedup", params.nthreads, params.seed);
    buildPipeline(b, params, /*steps=*/60,
                  /*buffer_bytes=*/256 * 1024,
                  /*work_ops_per_step=*/40, /*inject_at_step=*/10);
    return b.build();
}

std::unique_ptr<runtime::Program>
makeFacesim(const WorkloadParams &params)
{
    Builder b("parsec.facesim", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);
    constexpr int kIters = 10;

    const Region mesh = b.alloc(4 * 1024 * 1024);
    // One boundary strip between each pair of adjacent threads,
    // guarded by a shared lock (race-free exchange).
    std::vector<Region> boundary;
    std::vector<std::uint64_t> blocks;
    for (std::uint32_t i = 0; i < T; ++i) {
        boundary.push_back(b.alloc(4096));
        blocks.push_back(b.newLock());
    }

    for (int iter = 0; iter < kIters; ++iter) {
        for (ThreadId t = 0; t < T; ++t) {
            const Region slice = mesh.slice(t, T);
            b.sweep(t, slice, N / (kIters + 2), 0.3, false, 8);
            // Exchange with both neighbours.
            const std::uint32_t left = (t + T - 1) % T;
            b.lockedRmw(t, boundary[t], 25, blocks[t], true);
            b.lockedRmw(t, boundary[left], 25, blocks[left], true);
        }
        if (iter == 2)
            injectConfiguredRaces(b, params);
        b.barrierAll(b.newBarrier());
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeFerret(const WorkloadParams &params)
{
    Builder b("parsec.ferret", params.nthreads, params.seed);
    buildPipeline(b, params, /*steps=*/150,
                  /*buffer_bytes=*/64 * 1024,
                  /*work_ops_per_step=*/25, /*inject_at_step=*/20);
    return b.build();
}

std::unique_ptr<runtime::Program>
makeFluidanimate(const WorkloadParams &params)
{
    Builder b("parsec.fluidanimate", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);
    constexpr int kIters = 12;

    const Region cells = b.alloc(4 * 1024 * 1024);
    std::vector<Region> edge;
    std::vector<std::uint64_t> elock;
    for (std::uint32_t i = 0; i < T; ++i) {
        edge.push_back(b.alloc(16 * 1024));
        elock.push_back(b.newLock());
    }

    for (int iter = 0; iter < kIters; ++iter) {
        for (ThreadId t = 0; t < T; ++t) {
            const Region slice = cells.slice(t, T);
            b.sweep(t, slice, N / (kIters + 3), 0.4, false, 8);
            // Fine-grained locked updates of both edge strips every
            // iteration: frequent, small W->R/W->W bursts.
            const std::uint32_t left = (t + T - 1) % T;
            b.lockedRmw(t, edge[t], 50, elock[t], true);
            b.lockedRmw(t, edge[left], 50, elock[left], true);
        }
        if (iter == 2)
            injectConfiguredRaces(b, params);
        b.barrierAll(b.newBarrier());
        b.barrierAll(b.newBarrier());
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeFreqmine(const WorkloadParams &params)
{
    Builder b("parsec.freqmine", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);

    const Region transactions = b.alloc(6 * 1024 * 1024);
    const Region tree = b.alloc(512 * 1024);
    const std::uint64_t tree_lock = b.newLock();

    // Build phase: locked tree construction (shared, bursty).
    for (ThreadId t = 0; t < T; ++t) {
        const Region slice = transactions.slice(t, T);
        b.sweep(t, slice, N / 4, 0.0, false, 8);
        b.lockedRmw(t, tree, N / 200, tree_lock, true);
    }
    b.barrierAll(b.newBarrier());
    injectConfiguredRaces(b, params);
    // Mining phase: mostly private scans, occasional shared tree reads.
    for (ThreadId t = 0; t < T; ++t) {
        const Region slice = transactions.slice(t, T);
        for (int chunk = 0; chunk < 3; ++chunk) {
            b.sweep(t, slice, N / 4, 0.05, false, 8);
            b.sweep(t, tree, N / 400, 0.0, true);
        }
    }
    b.barrierAll(b.newBarrier());
    return b.build();
}

std::unique_ptr<runtime::Program>
makeRaytrace(const WorkloadParams &params)
{
    Builder b("parsec.raytrace", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);

    const Region scene = b.alloc(768 * 1024);
    const Region framebuffer = b.alloc(2 * 1024 * 1024);

    // Thread 0 loads the scene; afterwards it is read-only shared.
    b.sweep(0, scene, 12288, 1.0, false, 64);
    b.barrierAll(b.newBarrier());
    for (ThreadId t = 0; t < T; ++t) {
        const Region tile = framebuffer.slice(t, T);
        for (int bounce = 0; bounce < 4; ++bounce) {
            b.sweep(t, scene, N / 6, 0.0, true);
            b.sweep(t, tile, N / 12, 1.0, false, 8);
            b.compute(t, N / 500, 14);
        }
    }
    injectConfiguredRaces(b, params);
    b.barrierAll(b.newBarrier());
    return b.build();
}

std::unique_ptr<runtime::Program>
makeStreamcluster(const WorkloadParams &params)
{
    Builder b("parsec.streamcluster", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);
    constexpr int kIters = 10;

    const Region points = b.alloc(2 * 1024 * 1024);
    const Region centers = b.alloc(32 * 1024);
    const std::uint64_t center_lock = b.newLock();

    b.sweep(0, centers, centers.words(), 1.0);
    b.barrierAll(b.newBarrier());
    for (int iter = 0; iter < kIters; ++iter) {
        // Every thread scans the centers rewritten last iteration
        // (heavy W->R); centers stay read-only until the barrier.
        for (ThreadId t = 0; t < T; ++t) {
            const Region slice = points.slice(t, T);
            b.sweep(t, centers, 3000, 0.0, true);
            b.sweep(t, slice, N / (kIters + 4), 0.05, false, 8);
        }
        if (iter == 2)
            injectConfiguredRaces(b, params);
        b.barrierAll(b.newBarrier());
        // Locked center updates, then streamcluster's signature
        // barrier storm.
        for (ThreadId t = 0; t < T; ++t)
            b.lockedRmw(t, centers, 500, center_lock, true);
        b.barrierAll(b.newBarrier());
        b.barrierAll(b.newBarrier());
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeSwaptions(const WorkloadParams &params)
{
    Builder b("parsec.swaptions", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);

    const Region paths = b.alloc(1536 * 1024);
    for (ThreadId t = 0; t < T; ++t) {
        const Region slice = paths.slice(t, T);
        for (int sim = 0; sim < 5; ++sim) {
            b.sweep(t, slice, N / 6, 0.5, true);
            b.compute(t, N / 400, 16);
        }
    }
    injectConfiguredRaces(b, params);
    b.barrierAll(b.newBarrier());
    return b.build();
}

std::unique_ptr<runtime::Program>
makeVips(const WorkloadParams &params)
{
    Builder b("parsec.vips", params.nthreads, params.seed);
    // Coarse pipeline: few, large handoffs — sharing bursts are rare
    // compared to dedup/ferret, so analysis spends long stretches off.
    buildPipeline(b, params, /*steps=*/16,
                  /*buffer_bytes=*/1024 * 1024,
                  /*work_ops_per_step=*/120, /*inject_at_step=*/4,
                  /*private_ratio=*/4.0);
    return b.build();
}

std::unique_ptr<runtime::Program>
makeX264(const WorkloadParams &params)
{
    Builder b("parsec.x264", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kBaseN);
    constexpr int kFrames = 12;

    // Each thread encodes its own frame slice but motion-searches the
    // reference frame the previous thread encoded (W->R per frame).
    std::vector<Region> ref;
    for (std::uint32_t i = 0; i < T; ++i)
        ref.push_back(b.alloc(512 * 1024));

    for (int frame = 0; frame < kFrames; ++frame) {
        // Motion search: read the reference the neighbour encoded
        // last frame (W->R, ordered by the previous barrier).
        for (ThreadId t = 0; t < T; ++t) {
            const std::uint32_t prev = (t + T - 1) % T;
            b.sweep(t, ref[prev], N / (kFrames * 8), 0.0, true);
            b.compute(t, N / 1800, 10);
        }
        b.barrierAll(b.newBarrier());
        // Encode: rewrite the own reference frame.
        for (ThreadId t = 0; t < T; ++t) {
            b.sweep(t, ref[t], N / (kFrames * 2), 0.8, false, 8);
            b.compute(t, N / 1800, 10);
        }
        if (frame == 2)
            injectConfiguredRaces(b, params);
        b.barrierAll(b.newBarrier());
    }
    return b.build();
}

} // namespace hdrd::workloads
