#include "workloads/registry.hh"

#include "workloads/micro.hh"
#include "workloads/parsec.hh"
#include "workloads/phoenix.hh"
#include "workloads/stream.hh"

namespace hdrd::workloads
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        {"phoenix.histogram", "phoenix", makeHistogram},
        {"phoenix.kmeans", "phoenix", makeKmeans},
        {"phoenix.linear_regression", "phoenix", makeLinearRegression},
        {"phoenix.matrix_multiply", "phoenix", makeMatrixMultiply},
        {"phoenix.pca", "phoenix", makePca},
        {"phoenix.string_match", "phoenix", makeStringMatch},
        {"phoenix.word_count", "phoenix", makeWordCount},
        {"phoenix.reverse_index", "phoenix", makeReverseIndex},

        {"parsec.blackscholes", "parsec", makeBlackscholes},
        {"parsec.bodytrack", "parsec", makeBodytrack},
        {"parsec.canneal", "parsec", makeCanneal},
        {"parsec.dedup", "parsec", makeDedup},
        {"parsec.facesim", "parsec", makeFacesim},
        {"parsec.ferret", "parsec", makeFerret},
        {"parsec.fluidanimate", "parsec", makeFluidanimate},
        {"parsec.freqmine", "parsec", makeFreqmine},
        {"parsec.raytrace", "parsec", makeRaytrace},
        {"parsec.streamcluster", "parsec", makeStreamcluster},
        {"parsec.swaptions", "parsec", makeSwaptions},
        {"parsec.vips", "parsec", makeVips},
        {"parsec.x264", "parsec", makeX264},

        {"micro.racy_counter", "micro", makeRacyCounter},
        {"micro.racy_once", "micro", makeRacyOnce},
        {"micro.locked_counter", "micro", makeLockedCounter},
        {"micro.false_sharing", "micro", makeFalseSharing},
        {"micro.ping_pong", "micro", makePingPong},
        {"micro.racy_burst", "micro", makeRacyBurst},
        {"micro.private_only", "micro", makePrivateOnly},
        {"micro.unsafe_publish", "micro", makeUnsafePublish},
        {"micro.lockfree_counter", "micro", makeLockfreeCounter},
        {"micro.atomic_publish", "micro", makeAtomicPublish},
        {"micro.rw_cache", "micro", makeRwCache},
        {"micro.rw_buggy", "micro", makeRwBuggy},
    };
    return registry;
}

const std::vector<WorkloadInfo> &
streamWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        {"stream.scan", "stream", makeStreamScan},
        {"stream.shared_mix", "stream", makeStreamSharedMix},
        {"stream.hot_cold", "stream", makeStreamHotCold},
    };
    return registry;
}

const WorkloadInfo *
findWorkload(const std::string &name)
{
    for (const auto &info : allWorkloads()) {
        if (info.name == name)
            return &info;
    }
    for (const auto &info : streamWorkloads()) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

std::vector<WorkloadInfo>
suiteWorkloads(const std::string &suite)
{
    std::vector<WorkloadInfo> out;
    for (const auto &info : allWorkloads()) {
        if (info.suite == suite)
            out.push_back(info);
    }
    for (const auto &info : streamWorkloads()) {
        if (info.suite == suite)
            out.push_back(info);
    }
    return out;
}

} // namespace hdrd::workloads
