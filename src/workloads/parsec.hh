/**
 * @file
 * PARSEC-suite workload models.
 *
 * PARSEC programs share far more than Phoenix's map-reduce kernels:
 * pipelines hand whole buffers between stage threads, iterative
 * solvers reread neighbour state every step, and barrier-synchronized
 * phases rewrite shared structures continuously. The paper's
 * demand-driven detector therefore spends much more time enabled on
 * PARSEC, yielding the smaller ~3x mean speedup. Each model encodes
 * one benchmark's thread topology and sharing profile.
 */

#ifndef HDRD_WORKLOADS_PARSEC_HH
#define HDRD_WORKLOADS_PARSEC_HH

#include <memory>

#include "runtime/program.hh"
#include "workloads/params.hh"

namespace hdrd::workloads
{

/** blackscholes: embarrassingly parallel option pricing. */
std::unique_ptr<runtime::Program>
makeBlackscholes(const WorkloadParams &params);

/** bodytrack: iterative particle filter; model rewritten per frame. */
std::unique_ptr<runtime::Program>
makeBodytrack(const WorkloadParams &params);

/** canneal: random fine-locked swaps over a huge shared netlist. */
std::unique_ptr<runtime::Program>
makeCanneal(const WorkloadParams &params);

/** dedup: 4-stage compression pipeline handing buffers downstream. */
std::unique_ptr<runtime::Program>
makeDedup(const WorkloadParams &params);

/** facesim: iterative mesh solver with boundary exchanges. */
std::unique_ptr<runtime::Program>
makeFacesim(const WorkloadParams &params);

/** ferret: similarity-search pipeline, many small handoffs. */
std::unique_ptr<runtime::Program>
makeFerret(const WorkloadParams &params);

/** fluidanimate: fine-grained-locked neighbour-cell updates. */
std::unique_ptr<runtime::Program>
makeFluidanimate(const WorkloadParams &params);

/** freqmine: FP-growth; shared tree read-mostly after build. */
std::unique_ptr<runtime::Program>
makeFreqmine(const WorkloadParams &params);

/** raytrace: read-only scene, private rays. */
std::unique_ptr<runtime::Program>
makeRaytrace(const WorkloadParams &params);

/** streamcluster: barrier-heavy clustering over shared centers. */
std::unique_ptr<runtime::Program>
makeStreamcluster(const WorkloadParams &params);

/** swaptions: private Monte Carlo paths, negligible sharing. */
std::unique_ptr<runtime::Program>
makeSwaptions(const WorkloadParams &params);

/** vips: image pipeline with coarse, infrequent handoffs. */
std::unique_ptr<runtime::Program>
makeVips(const WorkloadParams &params);

/** x264: frame pipeline rereading reference frames. */
std::unique_ptr<runtime::Program>
makeX264(const WorkloadParams &params);

} // namespace hdrd::workloads

#endif // HDRD_WORKLOADS_PARSEC_HH
