#include "workloads/stream.hh"

#include <bit>
#include <cstdint>

#include "workloads/synthetic.hh"

namespace hdrd::workloads
{

namespace
{

/**
 * Scale a base region size and round up to a power of two, so the
 * sweep generator's cheap mask addressing applies and per-thread
 * slices of a 4-thread program stay powers of two themselves.
 */
std::uint64_t
scaledBytes(std::uint64_t base, double scale)
{
    const double v = static_cast<double>(base) * scale;
    const auto bytes = v < 4096.0 ? std::uint64_t{4096}
                                  : static_cast<std::uint64_t>(v);
    return std::bit_ceil(bytes);
}

} // namespace

std::unique_ptr<runtime::Program>
makeStreamScan(const WorkloadParams &params)
{
    Builder b("stream.scan", params.nthreads, params.seed);
    // 16 MiB at scale 1; 128 MiB (16M granules) at scale 8.
    const Region data = b.alloc(scaledBytes(16u << 20, params.scale));
    const std::uint64_t bar = b.newBarrier();
    for (int pass = 0; pass < 2; ++pass) {
        for (ThreadId t = 0; t < params.nthreads; ++t) {
            const Region slice = data.slice(t, params.nthreads);
            b.sweep(t, slice, slice.words(), 0.3);
        }
        b.barrierAll(bar);
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeStreamSharedMix(const WorkloadParams &params)
{
    Builder b("stream.shared_mix", params.nthreads, params.seed);
    // 1 MiB at scale 1; 8 MiB at scale 8. Smaller than the private
    // streams on purpose: every multi-reader granule inflates to a
    // pooled vector clock, which dominates footprint here.
    const Region data = b.alloc(scaledBytes(1u << 20, params.scale));
    for (ThreadId t = 0; t < params.nthreads; ++t)
        b.sweep(t, data, data.words(), 0.02, /*random=*/true);
    return b.build();
}

std::unique_ptr<runtime::Program>
makeStreamHotCold(const WorkloadParams &params)
{
    Builder b("stream.hot_cold", params.nthreads, params.seed);
    // Hot set fixed at 256 KiB (cache-resident at any scale); cold
    // region 8 MiB at scale 1, 64 MiB at scale 8.
    const Region hot = b.alloc(256u << 10);
    const Region cold = b.alloc(scaledBytes(8u << 20, params.scale));
    const std::uint64_t per_thread = cold.words() / params.nthreads;
    // Ten alternating bursts per thread, per_thread accesses in all:
    // 90% of accesses stay hot, 10% random-walk the thread's private
    // cold slice (~50 touches per 512-granule shadow chunk, so the
    // full cold shadow footprint materializes).
    for (ThreadId t = 0; t < params.nthreads; ++t) {
        const Region hot_slice = hot.slice(t, params.nthreads);
        const Region cold_slice = cold.slice(t, params.nthreads);
        for (int burst = 0; burst < 10; ++burst) {
            b.sweep(t, hot_slice, (per_thread * 9) / 100, 0.5,
                    /*random=*/true);
            b.sweep(t, cold_slice, per_thread / 100, 0.3,
                    /*random=*/true);
        }
    }
    return b.build();
}

} // namespace hdrd::workloads
