/**
 * @file
 * Parameters shared by every workload model factory.
 */

#ifndef HDRD_WORKLOADS_PARAMS_HH
#define HDRD_WORKLOADS_PARAMS_HH

#include <cstdint>

namespace hdrd::workloads
{

/**
 * Knobs every workload factory accepts.
 */
struct WorkloadParams
{
    /** Worker thread count. */
    std::uint32_t nthreads = 4;

    /**
     * Size multiplier on the model's default operation budget.
     * 1.0 is the benchmark's reference size (roughly 1-3 million
     * simulated operations); tests use much smaller values.
     */
    double scale = 1.0;

    /** Base seed for the program's deterministic random streams. */
    std::uint64_t seed = 42;

    /**
     * Number of data races to inject into the model's parallel phase
     * (0 = the benchmark's natural race-free behaviour). Ground truth
     * is recorded for accuracy scoring.
     */
    std::uint32_t injected_races = 0;

    /**
     * Dynamic accesses per side of each injected race. Large values
     * model the common repeating-race case; 1 models a one-shot race
     * that demand-driven analysis is expected to miss.
     */
    std::uint64_t race_repeats = 200;

    /** Apply @p scale to a base operation count (min 1). */
    std::uint64_t scaled(std::uint64_t base) const
    {
        const double v = static_cast<double>(base) * scale;
        return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
    }
};

} // namespace hdrd::workloads

#endif // HDRD_WORKLOADS_PARAMS_HH
