#include "workloads/phoenix.hh"

#include "workloads/synthetic.hh"

namespace hdrd::workloads
{

namespace
{

/** Per-thread map-phase accesses at scale 1.0. */
constexpr std::uint64_t kMapN = 120000;

} // namespace

std::unique_ptr<runtime::Program>
makeHistogram(const WorkloadParams &params)
{
    Builder b("phoenix.histogram", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kMapN);

    const Region input = b.alloc(4 * 1024 * 1024);
    const Region shared_hist = b.alloc(2048);
    const std::uint64_t merge_lock = b.newLock();
    const std::uint64_t done = b.newBarrier();

    for (ThreadId t = 0; t < T; ++t) {
        const Region slice = input.slice(t, T);
        const Region local_hist = b.alloc(2048);
        // Map: scan the private input slice, bump private bins.
        for (int chunk = 0; chunk < 4; ++chunk) {
            b.sweep(t, slice, N / 5, 0.0, false, 8);
            b.sweep(t, local_hist, N / 20, 0.6, true);
            b.compute(t, N / 400, 8);
        }
    }
    injectConfiguredRaces(b, params);
    b.barrierAll(done);
    // Reduce: serialize 256-bin merges under one lock.
    for (ThreadId t = 0; t < T; ++t)
        b.lockedRmw(t, shared_hist, 128, merge_lock);
    b.barrierAll(b.newBarrier());
    return b.build();
}

std::unique_ptr<runtime::Program>
makeKmeans(const WorkloadParams &params)
{
    Builder b("phoenix.kmeans", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kMapN);
    constexpr int kIters = 8;

    const Region points = b.alloc(2 * 1024 * 1024);
    const Region centroids = b.alloc(2048);
    const std::uint64_t update_lock = b.newLock();

    // Thread 0 initializes the centroids the whole pool will read.
    b.sweep(0, centroids, centroids.words(), 1.0);
    b.barrierAll(b.newBarrier());

    for (int iter = 0; iter < kIters; ++iter) {
        // Assignment sub-phase: every thread rereads the centroids
        // other threads rewrote last iteration (the recurring W->R
        // sharing burst) and scans its private points. No centroid
        // writes happen in this sub-phase, so the unlocked reads are
        // race-free.
        for (ThreadId t = 0; t < T; ++t) {
            const Region slice = points.slice(t, T);
            b.sweep(t, centroids, 1200, 0.0, true);
            b.sweep(t, slice, N / (kIters + 2), 0.1, false, 8);
        }
        if (iter == 1)
            injectConfiguredRaces(b, params);
        b.barrierAll(b.newBarrier());
        // Update sub-phase: locked accumulation of new centroid sums.
        for (ThreadId t = 0; t < T; ++t)
            b.lockedRmw(t, centroids, 32, update_lock);
        b.barrierAll(b.newBarrier());
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeLinearRegression(const WorkloadParams &params)
{
    Builder b("phoenix.linear_regression", params.nthreads,
              params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kMapN);

    const Region input = b.alloc(1024 * 1024);
    const Region sums = b.alloc(64);
    const std::uint64_t merge_lock = b.newLock();

    // One long pass of purely private accumulation per thread, then a
    // four-element locked merge: the near-zero-sharing 51x program.
    for (ThreadId t = 0; t < T; ++t) {
        const Region slice = input.slice(t, T);
        b.sweep(t, slice, 2 * N, 0.0, false, 8);
        b.compute(t, N / 200, 8);
    }
    injectConfiguredRaces(b, params);
    for (ThreadId t = 0; t < T; ++t)
        b.lockedRmw(t, sums, 4, merge_lock);
    return b.build();
}

std::unique_ptr<runtime::Program>
makeMatrixMultiply(const WorkloadParams &params)
{
    Builder b("phoenix.matrix_multiply", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kMapN);

    const Region a = b.alloc(512 * 1024);
    const Region bm = b.alloc(512 * 1024);
    const Region c = b.alloc(512 * 1024);

    // Thread 0 writes the inputs; workers then read them shared —
    // a single W->R burst at the start, silence afterwards.
    b.sweep(0, a, 16384, 1.0, false, 32);
    b.sweep(0, bm, 16384, 1.0, false, 32);
    b.barrierAll(b.newBarrier());

    for (ThreadId t = 0; t < T; ++t) {
        const Region arows = a.slice(t, T);
        const Region cslice = c.slice(t, T);
        for (int blk = 0; blk < 4; ++blk) {
            b.sweep(t, arows, N / 6, 0.0, false, 8);
            b.sweep(t, bm, N / 6, 0.0, false, 64);
            b.sweep(t, cslice, N / 24, 1.0, false, 8);
            b.compute(t, N / 300, 6);
        }
    }
    injectConfiguredRaces(b, params);
    b.barrierAll(b.newBarrier());
    return b.build();
}

std::unique_ptr<runtime::Program>
makePca(const WorkloadParams &params)
{
    Builder b("phoenix.pca", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kMapN);

    const Region matrix = b.alloc(4 * 1024 * 1024);
    const Region means = b.alloc(4096);
    const Region cov = b.alloc(16384);
    const std::uint64_t lock = b.newLock();

    // Phase 1: per-row means (private), short locked merge.
    for (ThreadId t = 0; t < T; ++t) {
        const Region slice = matrix.slice(t, T);
        b.sweep(t, slice, N, 0.0, false, 8);
        b.lockedRmw(t, means, 16, lock);
    }
    b.barrierAll(b.newBarrier());
    // Phase 2: covariance (private reads of the whole matrix region's
    // own slice again), locked accumulation into cov.
    for (ThreadId t = 0; t < T; ++t) {
        const Region slice = matrix.slice(t, T);
        b.sweep(t, slice, N, 0.0, true);
        b.lockedRmw(t, cov, 32, lock);
    }
    injectConfiguredRaces(b, params);
    b.barrierAll(b.newBarrier());
    return b.build();
}

std::unique_ptr<runtime::Program>
makeStringMatch(const WorkloadParams &params)
{
    Builder b("phoenix.string_match", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kMapN);

    const Region keys = b.alloc(4096);
    const Region corpus = b.alloc(8 * 1024 * 1024);
    const Region found = b.alloc(64);
    const std::uint64_t lock = b.newLock();

    // Thread 0 writes the keys; workers scan private corpus slices,
    // re-reading the small shared key block as they go.
    b.sweep(0, keys, keys.words(), 1.0);
    b.barrierAll(b.newBarrier());
    for (ThreadId t = 0; t < T; ++t) {
        const Region slice = corpus.slice(t, T);
        for (int chunk = 0; chunk < 4; ++chunk) {
            b.sweep(t, slice, N / 3, 0.0, false, 8);
            b.sweep(t, keys, N / 60, 0.0, true);
        }
        b.lockedRmw(t, found, 4, lock);
    }
    injectConfiguredRaces(b, params);
    b.barrierAll(b.newBarrier());
    return b.build();
}

std::unique_ptr<runtime::Program>
makeWordCount(const WorkloadParams &params)
{
    Builder b("phoenix.word_count", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kMapN);

    const Region corpus = b.alloc(6 * 1024 * 1024);
    const Region shared_hash = b.alloc(8192);
    const std::uint64_t lock = b.newLock();

    for (ThreadId t = 0; t < T; ++t) {
        const Region slice = corpus.slice(t, T);
        const Region local_hash = b.alloc(8192);
        b.sweep(t, slice, N, 0.0, false, 8);
        b.sweep(t, local_hash, N / 3, 0.5, true);
    }
    injectConfiguredRaces(b, params);
    b.barrierAll(b.newBarrier());
    // Reduce: a hash-merge loop with noticeably more locked traffic
    // than histogram — word_count's reduction dominates its sharing.
    for (ThreadId t = 0; t < T; ++t)
        b.lockedRmw(t, shared_hash, params.scaled(kMapN) / 120, lock,
                    true);
    b.barrierAll(b.newBarrier());
    return b.build();
}

std::unique_ptr<runtime::Program>
makeReverseIndex(const WorkloadParams &params)
{
    Builder b("phoenix.reverse_index", params.nthreads, params.seed);
    const std::uint32_t T = params.nthreads;
    const std::uint64_t N = params.scaled(kMapN);

    const Region pages = b.alloc(6 * 1024 * 1024);
    const Region index = b.alloc(64 * 1024);
    const std::uint64_t lock = b.newLock();

    // Link extraction interleaves private parsing with locked index
    // insertions rather than batching them at the end.
    for (int chunk = 0; chunk < 6; ++chunk) {
        for (ThreadId t = 0; t < T; ++t) {
            const Region slice = pages.slice(t, T);
            b.sweep(t, slice, N / 7, 0.0, false, 8);
            b.lockedRmw(t, index, N / 500, lock, true);
        }
        if (chunk == 2)
            injectConfiguredRaces(b, params);
    }
    b.barrierAll(b.newBarrier());
    return b.build();
}

} // namespace hdrd::workloads
