/**
 * @file
 * Micro-kernels with precisely controlled race and sharing behaviour.
 *
 * These are the unit-of-measure workloads: every detection and
 * fidelity claim in the test suite is grounded on a kernel whose
 * ground truth is known by construction — repeating races, one-shot
 * races, race-free locked counters, false sharing with no races,
 * HITM-heavy race-free ping-pong, and bursty racy phases.
 */

#ifndef HDRD_WORKLOADS_MICRO_HH
#define HDRD_WORKLOADS_MICRO_HH

#include <memory>

#include "runtime/program.hh"
#include "workloads/params.hh"

namespace hdrd::workloads
{

/** All threads hammer one unlocked shared counter: a repeating race. */
std::unique_ptr<runtime::Program>
makeRacyCounter(const WorkloadParams &params);

/** Long private phases around a single one-shot racy pair — the case
 *  demand-driven detection is expected to miss. */
std::unique_ptr<runtime::Program>
makeRacyOnce(const WorkloadParams &params);

/** Race-free counterpart of racy_counter: same traffic, locked. */
std::unique_ptr<runtime::Program>
makeLockedCounter(const WorkloadParams &params);

/** Each thread writes its own word of one cache line: zero races,
 *  maximal false sharing (spurious HITMs). */
std::unique_ptr<runtime::Program>
makeFalseSharing(const WorkloadParams &params);

/** Two threads alternate locked updates of one word: race-free,
 *  HITM-dense true sharing. */
std::unique_ptr<runtime::Program>
makePingPong(const WorkloadParams &params);

/** Alternating private phases and unsynchronized sharing bursts. */
std::unique_ptr<runtime::Program>
makeRacyBurst(const WorkloadParams &params);

/** Purely private work: zero sharing, zero races (nothing should
 *  ever fire). */
std::unique_ptr<runtime::Program>
makePrivateOnly(const WorkloadParams &params);

/** Producer publishes a buffer through an unsynchronized flag:
 *  the classic unsafe-publish race. */
std::unique_ptr<runtime::Program>
makeUnsafePublish(const WorkloadParams &params);

/** All threads bump one seq_cst atomic counter: race-free lock-free
 *  sharing, HITM-dense at the protocol level. */
std::unique_ptr<runtime::Program>
makeLockfreeCounter(const WorkloadParams &params);

/** The safe counterpart of unsafe_publish: the flag is an atomic, so
 *  the buffer handoff is happens-before ordered. */
std::unique_ptr<runtime::Program>
makeAtomicPublish(const WorkloadParams &params);

/** Read-mostly shared structure under a reader-writer lock:
 *  race-free, with readers overlapping freely. */
std::unique_ptr<runtime::Program>
makeRwCache(const WorkloadParams &params);

/** rw_cache with a bug: one thread writes while holding only the
 *  READ side of the lock — racing every concurrent reader. */
std::unique_ptr<runtime::Program>
makeRwBuggy(const WorkloadParams &params);

} // namespace hdrd::workloads

#endif // HDRD_WORKLOADS_MICRO_HH
