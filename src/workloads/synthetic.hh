/**
 * @file
 * The synthetic workload engine: segment-programmed thread bodies.
 *
 * Workload models (Phoenix, PARSEC, micro-kernels) are assembled from
 * a small vocabulary of per-thread segments — compute bursts, strided
 * or random sweeps over memory regions, lock-protected read-modify-
 * write loops, barriers — executed in sequence. The vocabulary is rich
 * enough to encode each benchmark's *sharing profile* (how much data
 * is shared, between whom, how bursty, under what synchronization),
 * which is the property the paper's results depend on.
 */

#ifndef HDRD_WORKLOADS_SYNTHETIC_HH
#define HDRD_WORKLOADS_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "detect/report.hh"
#include "runtime/program.hh"
#include "workloads/params.hh"

namespace hdrd::workloads
{

/** A contiguous span of the simulated address space. */
struct Region
{
    Addr base = 0;
    std::uint64_t bytes = 0;

    /** Number of 8-byte words. */
    std::uint64_t words() const { return bytes / 8; }

    /** Equal slice @p i of @p n (for per-thread partitioning). */
    Region slice(std::uint32_t i, std::uint32_t n) const;
};

/** Segment kinds a thread's script is made of. */
enum class SegmentKind : std::uint8_t
{
    kCompute = 0,   ///< count work ops of work_cycles each
    kSweep,         ///< count unsynchronized accesses over region
    kLockedRmw,     ///< count of: lock, read word, write word, unlock
    kBarrier,       ///< one barrier arrival
    kLockOp,        ///< one lock acquire
    kUnlockOp,      ///< one lock release
    kAtomicSweep,   ///< count atomic RMWs over region
    kAtomicWaitOp,  ///< one futex-style wait on region.base
    kRdLockOp,      ///< one rwlock read acquire
    kRdUnlockOp,    ///< one rwlock read release
    kWrLockOp,      ///< one rwlock write acquire
    kWrUnlockOp,    ///< one rwlock write release
};

/**
 * One scripted segment.
 */
struct Segment
{
    SegmentKind kind = SegmentKind::kCompute;

    /** Memory region for kSweep/kLockedRmw. */
    Region region{};

    /** Iterations (accesses, rmw loops, or work ops). */
    std::uint64_t count = 0;

    /** kSweep stride in bytes (strided addressing). */
    std::uint64_t stride = 8;

    /** kSweep: probability an access is a write. */
    double write_ratio = 0.0;

    /** Random word addressing instead of strided. */
    bool random_addr = false;

    /** Lock id (kLockedRmw/kLockOp/kUnlockOp) or barrier id. */
    std::uint64_t obj = 0;

    /** Barrier participant count (0 = every program thread). */
    std::uint32_t participants = 0;

    /**
     * kCompute: cycles per work op. Other kinds: cycles of work
     * interleaved before each iteration (0 = none).
     */
    std::uint64_t work_cycles = 0;

    /** Static sites for this segment's reads and writes. */
    SiteId read_site = kInvalidSite;
    SiteId write_site = kInvalidSite;
};

/**
 * A Program assembled from per-thread segment scripts.
 */
class SyntheticProgram : public runtime::Program
{
  public:
    SyntheticProgram(std::string name, std::uint64_t seed,
                     std::vector<std::vector<Segment>> scripts,
                     std::vector<runtime::InjectedRace> injected);

    const std::string &name() const override { return name_; }

    std::uint32_t numThreads() const override
    {
        return static_cast<std::uint32_t>(scripts_.size());
    }

    std::unique_ptr<runtime::ThreadBody>
    makeThread(ThreadId tid) override;

    std::vector<runtime::InjectedRace> injectedRaces() const override
    {
        return injected_;
    }

  private:
    std::string name_;
    std::uint64_t seed_;
    std::vector<std::vector<Segment>> scripts_;
    std::vector<runtime::InjectedRace> injected_;
};

/**
 * Fluent builder for SyntheticPrograms: region allocation, per-thread
 * segment appends with automatic site-id assignment, lock/barrier id
 * management, and injected-race ground truth.
 */
class Builder
{
  public:
    Builder(std::string name, std::uint32_t nthreads,
            std::uint64_t seed = 42);

    /** Allocate a fresh cache-line-aligned region. */
    Region alloc(std::uint64_t bytes);

    /** Fresh lock / barrier object ids. */
    std::uint64_t newLock() { return next_lock_++; }
    std::uint64_t newBarrier() { return next_barrier_++; }

    /** Number of threads this program was declared with. */
    std::uint32_t nthreads() const
    {
        return static_cast<std::uint32_t>(scripts_.size());
    }

    /** Sites assigned to a segment's reads and writes. */
    struct Sites
    {
        SiteId read = kInvalidSite;
        SiteId write = kInvalidSite;
    };

    /** Append @p ops work ops of @p cycles_each to thread @p t. */
    void compute(ThreadId t, std::uint64_t ops,
                 std::uint64_t cycles_each);

    /**
     * Append an unsynchronized sweep of @p count accesses over
     * @p region to thread @p t.
     */
    Sites sweep(ThreadId t, Region region, std::uint64_t count,
                double write_ratio, bool random = false,
                std::uint64_t stride = 8,
                std::uint64_t interleave_work = 0);

    /**
     * Append @p count lock-protected read-modify-writes over
     * @p region under @p lock_id to thread @p t.
     */
    Sites lockedRmw(ThreadId t, Region region, std::uint64_t count,
                    std::uint64_t lock_id, bool random = false,
                    std::uint64_t interleave_work = 0);

    /**
     * Append @p count seq_cst atomic read-modify-writes over
     * @p region to thread @p t (lock-free idioms: counters, flags,
     * work-stealing indices). Ordered, never racy.
     */
    Sites atomicSweep(ThreadId t, Region region, std::uint64_t count,
                      bool random = false,
                      std::uint64_t interleave_work = 0);

    /**
     * Append a futex-style wait: thread @p t blocks until the atomic
     * word at @p region.base has seen @p threshold RMWs, with
     * acquire-ordering on the wake — the lock-free publish idiom.
     */
    void atomicWait(ThreadId t, Region region,
                    std::uint64_t threshold);

    /** Append one barrier arrival for thread @p t. */
    void barrier(ThreadId t, std::uint64_t barrier_id,
                 std::uint32_t participants = 0);

    /** Append the same barrier arrival to every thread. */
    void barrierAll(std::uint64_t barrier_id);

    /** Append a bare lock acquire / release. */
    void lockOp(ThreadId t, std::uint64_t lock_id);
    void unlockOp(ThreadId t, std::uint64_t lock_id);

    /** Fresh reader-writer lock id. */
    std::uint64_t newRwLock() { return next_rwlock_++; }

    /** Append bare rwlock operations. */
    void rdLockOp(ThreadId t, std::uint64_t rwlock_id);
    void rdUnlockOp(ThreadId t, std::uint64_t rwlock_id);
    void wrLockOp(ThreadId t, std::uint64_t rwlock_id);
    void wrUnlockOp(ThreadId t, std::uint64_t rwlock_id);

    /**
     * Append a whole rwlock critical section: acquire @p rwlock_id
     * (read or write side per @p write), sweep @p count accesses over
     * @p region (reads, or mixed writes for the writer side), and
     * release. The read-mostly-shared-structure idiom.
     */
    Sites rwSweep(ThreadId t, Region region, std::uint64_t count,
                  std::uint64_t rwlock_id, bool write,
                  bool random = false);

    /** Record ground truth: these site pairs form one injected race. */
    void recordInjectedRace(
        std::vector<std::pair<SiteId, SiteId>> pairs);

    /** Finalize into a Program. */
    std::unique_ptr<SyntheticProgram> build();

  private:
    Segment &append(ThreadId t, Segment segment);
    Sites assignSites(Segment &segment, bool reads, bool writes);

    std::string name_;
    std::uint64_t seed_;
    std::vector<std::vector<Segment>> scripts_;
    std::vector<runtime::InjectedRace> injected_;
    Addr next_addr_ = 0x10000;
    std::uint64_t next_lock_ = 1;
    std::uint64_t next_rwlock_ = 1;
    std::uint64_t next_barrier_ = 1;
    SiteId next_site_ = 1;
};

/**
 * Inject one repeating data race between threads @p a and @p b at
 * their current script positions: both get a short unsynchronized
 * mixed read/write burst over a fresh word-sized region. Ground truth
 * is recorded in the builder.
 *
 * @param repeats dynamic accesses per thread; 1 models a one-shot
 *        race (hard for demand-driven detection), hundreds model the
 *        common repeating-race case.
 */
void injectRace(Builder &builder, ThreadId a, ThreadId b,
                std::uint64_t repeats);

/**
 * Inject the number of races @p params asks for, round-robin across
 * thread pairs, at the threads' current script positions. Call from a
 * workload model at the point in its build that corresponds to the
 * parallel phase.
 */
void injectConfiguredRaces(Builder &builder,
                           const WorkloadParams &params);

/**
 * Fraction of @p injected races found in @p reports (a race counts as
 * found when any of its site pairs was reported).
 */
double detectedFraction(
    const std::vector<runtime::InjectedRace> &injected,
    const detect::ReportSink &reports);

} // namespace hdrd::workloads

#endif // HDRD_WORKLOADS_SYNTHETIC_HH
