/**
 * @file
 * Phoenix-suite workload models.
 *
 * Phoenix is a shared-memory map-reduce suite: threads run long
 * private map phases over disjoint input slices and meet in short,
 * lock-protected reduction phases. Inter-thread sharing is
 * consequently rare and bursty — exactly why the paper's demand-driven
 * detector achieves its ~10x mean (and 51x best-case) speedups there.
 * Each model encodes one benchmark's thread structure, working-set
 * sizes, synchronization idiom, and sharing profile.
 */

#ifndef HDRD_WORKLOADS_PHOENIX_HH
#define HDRD_WORKLOADS_PHOENIX_HH

#include <memory>

#include "runtime/program.hh"
#include "workloads/params.hh"

namespace hdrd::workloads
{

/** histogram: private pixel counting, one locked 256-bin merge. */
std::unique_ptr<runtime::Program>
makeHistogram(const WorkloadParams &params);

/** kmeans: iterative; shared centroids reread and rewritten per
 *  iteration — the most sharing-intensive Phoenix model. */
std::unique_ptr<runtime::Program>
makeKmeans(const WorkloadParams &params);

/** linear_regression: one pass of pure private accumulation with a
 *  tiny final merge — the paper's 51x best case. */
std::unique_ptr<runtime::Program>
makeLinearRegression(const WorkloadParams &params);

/** matrix_multiply: shared read-only inputs after an init burst. */
std::unique_ptr<runtime::Program>
makeMatrixMultiply(const WorkloadParams &params);

/** pca: two barrier-separated, mostly private phases. */
std::unique_ptr<runtime::Program>
makePca(const WorkloadParams &params);

/** string_match: private scans against small shared key data. */
std::unique_ptr<runtime::Program>
makeStringMatch(const WorkloadParams &params);

/** word_count: private counting, heavier locked hash-merge reduce. */
std::unique_ptr<runtime::Program>
makeWordCount(const WorkloadParams &params);

/** reverse_index: link extraction with repeated locked index merges. */
std::unique_ptr<runtime::Program>
makeReverseIndex(const WorkloadParams &params);

} // namespace hdrd::workloads

#endif // HDRD_WORKLOADS_PHOENIX_HH
