#include "workloads/synthetic.hh"

#include <algorithm>

#include "common/logging.hh"
#include "runtime/op.hh"

namespace hdrd::workloads
{

using runtime::Op;

Region
Region::slice(std::uint32_t i, std::uint32_t n) const
{
    hdrdAssert(n > 0 && i < n, "bad region slice ", i, "/", n);
    // Word-aligned equal partitions; the last slice absorbs remainder.
    const std::uint64_t per = (words() / n) * 8;
    const Addr slice_base = base + static_cast<Addr>(i) * per;
    const std::uint64_t slice_bytes =
        (i == n - 1) ? (base + bytes - slice_base) : per;
    return Region{slice_base, slice_bytes};
}

namespace
{

/**
 * Executes one thread's segment script lazily.
 */
class SyntheticThread : public runtime::ThreadBody
{
  public:
    SyntheticThread(const std::vector<Segment> *script, Rng rng)
        : script_(script), rng_(rng)
    {
    }

    bool next(Op &op) override;

  private:
    /** Micro-steps inside one iteration of a segment. */
    enum class Step : std::uint8_t
    {
        kInterleavedWork = 0,
        kLock,
        kAccess,       // kSweep's access / kLockedRmw's read
        kSecondAccess, // kLockedRmw's write
        kUnlock,
        kDone,
    };

    /** Address for the current iteration of @p segment. */
    Addr pickAddr(const Segment &segment);

    const std::vector<Segment> *script_;
    Rng rng_;
    std::size_t seg_idx_ = 0;
    std::uint64_t iter_ = 0;
    Step step_ = Step::kInterleavedWork;
    Addr iter_addr_ = 0;
};

Addr
SyntheticThread::pickAddr(const Segment &segment)
{
    const Region &region = segment.region;
    hdrdAssert(region.words() > 0, "segment sweeps an empty region");
    std::uint64_t word;
    if (segment.random_addr) {
        word = rng_.nextBounded(region.words());
        return region.base + word * 8;
    }
    const std::uint64_t step =
        iter_ * std::max<std::uint64_t>(segment.stride, 1);
    // Region sizes are usually powers of two; the wrap is then a
    // mask instead of a 64-bit division on every generated access.
    const std::uint64_t bytes = region.bytes;
    const std::uint64_t offset = (bytes & (bytes - 1)) == 0
        ? step & (bytes - 1)
        : step % bytes;
    return region.base + (offset & ~std::uint64_t{7});
}

bool
SyntheticThread::next(Op &op)
{
    for (;;) {
        if (seg_idx_ >= script_->size())
            return false;
        const Segment &segment = (*script_)[seg_idx_];
        const std::uint64_t count =
            segment.kind == SegmentKind::kCompute
                    || segment.kind == SegmentKind::kSweep
                    || segment.kind == SegmentKind::kAtomicSweep
                    || segment.kind == SegmentKind::kLockedRmw
                ? segment.count
                : 1;
        if (iter_ >= count) {
            ++seg_idx_;
            iter_ = 0;
            step_ = Step::kInterleavedWork;
            continue;
        }

        switch (segment.kind) {
          case SegmentKind::kCompute:
            op = Op::work(segment.work_cycles);
            ++iter_;
            return true;

          case SegmentKind::kBarrier:
            op = Op::barrier(segment.obj, segment.participants);
            ++iter_;
            return true;

          case SegmentKind::kLockOp:
            op = Op::lock(segment.obj);
            ++iter_;
            return true;

          case SegmentKind::kUnlockOp:
            op = Op::unlock(segment.obj);
            ++iter_;
            return true;

          case SegmentKind::kAtomicWaitOp:
            op = Op::atomicWait(segment.region.base, segment.obj);
            ++iter_;
            return true;

          case SegmentKind::kRdLockOp:
            op = Op::rdLock(segment.obj);
            ++iter_;
            return true;

          case SegmentKind::kRdUnlockOp:
            op = Op::rdUnlock(segment.obj);
            ++iter_;
            return true;

          case SegmentKind::kWrLockOp:
            op = Op::wrLock(segment.obj);
            ++iter_;
            return true;

          case SegmentKind::kWrUnlockOp:
            op = Op::wrUnlock(segment.obj);
            ++iter_;
            return true;

          case SegmentKind::kSweep:
          case SegmentKind::kAtomicSweep: {
            if (step_ == Step::kInterleavedWork) {
                step_ = Step::kAccess;
                if (segment.work_cycles > 0) {
                    op = Op::work(segment.work_cycles);
                    return true;
                }
            }
            // The access itself.
            const Addr addr = pickAddr(segment);
            if (segment.kind == SegmentKind::kAtomicSweep) {
                op = Op::atomicRmw(addr, segment.write_site);
            } else {
                const bool write =
                    rng_.nextBool(segment.write_ratio);
                op = write ? Op::write(addr, segment.write_site)
                           : Op::read(addr, segment.read_site);
            }
            ++iter_;
            step_ = Step::kInterleavedWork;
            return true;
          }

          case SegmentKind::kLockedRmw: {
            switch (step_) {
              case Step::kInterleavedWork:
                step_ = Step::kLock;
                if (segment.work_cycles > 0) {
                    op = Op::work(segment.work_cycles);
                    return true;
                }
                [[fallthrough]];
              case Step::kLock:
                iter_addr_ = pickAddr(segment);
                op = Op::lock(segment.obj);
                step_ = Step::kAccess;
                return true;
              case Step::kAccess:
                op = Op::read(iter_addr_, segment.read_site);
                step_ = Step::kSecondAccess;
                return true;
              case Step::kSecondAccess:
                op = Op::write(iter_addr_, segment.write_site);
                step_ = Step::kUnlock;
                return true;
              case Step::kUnlock:
                op = Op::unlock(segment.obj);
                ++iter_;
                step_ = Step::kInterleavedWork;
                return true;
              case Step::kDone:
                panic("unreachable rmw step");
            }
            break;
          }
        }
    }
}

} // namespace

SyntheticProgram::SyntheticProgram(
    std::string name, std::uint64_t seed,
    std::vector<std::vector<Segment>> scripts,
    std::vector<runtime::InjectedRace> injected)
    : name_(std::move(name)), seed_(seed), scripts_(std::move(scripts)),
      injected_(std::move(injected))
{
    hdrdAssert(!scripts_.empty(), "program needs at least one thread");
}

std::unique_ptr<runtime::ThreadBody>
SyntheticProgram::makeThread(ThreadId tid)
{
    hdrdAssert(tid < scripts_.size(), "unknown thread ", tid);
    // Deterministic per-thread stream: same (program seed, tid) gives
    // the same operation sequence on every run.
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL
                     * (static_cast<std::uint64_t>(tid) + 1)));
    return std::make_unique<SyntheticThread>(&scripts_[tid], rng);
}

Builder::Builder(std::string name, std::uint32_t nthreads,
                 std::uint64_t seed)
    : name_(std::move(name)), seed_(seed), scripts_(nthreads)
{
    hdrdAssert(nthreads > 0, "builder needs at least one thread");
}

Region
Builder::alloc(std::uint64_t bytes)
{
    hdrdAssert(bytes >= 8, "regions must hold at least one word");
    // Cache-line aligned, padded so distinct regions never false-share.
    const std::uint64_t padded = (bytes + 63) & ~std::uint64_t{63};
    const Region region{next_addr_, bytes};
    next_addr_ += padded;
    return region;
}

Segment &
Builder::append(ThreadId t, Segment segment)
{
    hdrdAssert(t < scripts_.size(), "unknown thread ", t);
    scripts_[t].push_back(segment);
    return scripts_[t].back();
}

Builder::Sites
Builder::assignSites(Segment &segment, bool reads, bool writes)
{
    Sites sites;
    if (reads) {
        segment.read_site = next_site_++;
        sites.read = segment.read_site;
    }
    if (writes) {
        segment.write_site = next_site_++;
        sites.write = segment.write_site;
    }
    return sites;
}

void
Builder::compute(ThreadId t, std::uint64_t ops,
                 std::uint64_t cycles_each)
{
    Segment segment;
    segment.kind = SegmentKind::kCompute;
    segment.count = ops;
    segment.work_cycles = cycles_each;
    append(t, segment);
}

Builder::Sites
Builder::sweep(ThreadId t, Region region, std::uint64_t count,
               double write_ratio, bool random, std::uint64_t stride,
               std::uint64_t interleave_work)
{
    Segment segment;
    segment.kind = SegmentKind::kSweep;
    segment.region = region;
    segment.count = count;
    segment.write_ratio = write_ratio;
    segment.random_addr = random;
    segment.stride = stride;
    segment.work_cycles = interleave_work;
    Sites sites = assignSites(segment, write_ratio < 1.0,
                              write_ratio > 0.0);
    append(t, segment);
    return sites;
}

Builder::Sites
Builder::lockedRmw(ThreadId t, Region region, std::uint64_t count,
                   std::uint64_t lock_id, bool random,
                   std::uint64_t interleave_work)
{
    Segment segment;
    segment.kind = SegmentKind::kLockedRmw;
    segment.region = region;
    segment.count = count;
    segment.random_addr = random;
    segment.obj = lock_id;
    segment.work_cycles = interleave_work;
    Sites sites = assignSites(segment, true, true);
    append(t, segment);
    return sites;
}

Builder::Sites
Builder::atomicSweep(ThreadId t, Region region, std::uint64_t count,
                     bool random, std::uint64_t interleave_work)
{
    Segment segment;
    segment.kind = SegmentKind::kAtomicSweep;
    segment.region = region;
    segment.count = count;
    segment.random_addr = random;
    segment.work_cycles = interleave_work;
    Sites sites = assignSites(segment, false, true);
    append(t, segment);
    return sites;
}

namespace
{

Segment
bareOp(SegmentKind kind, std::uint64_t obj)
{
    Segment segment;
    segment.kind = kind;
    segment.obj = obj;
    return segment;
}

} // namespace

void
Builder::rdLockOp(ThreadId t, std::uint64_t rwlock_id)
{
    append(t, bareOp(SegmentKind::kRdLockOp, rwlock_id));
}

void
Builder::rdUnlockOp(ThreadId t, std::uint64_t rwlock_id)
{
    append(t, bareOp(SegmentKind::kRdUnlockOp, rwlock_id));
}

void
Builder::wrLockOp(ThreadId t, std::uint64_t rwlock_id)
{
    append(t, bareOp(SegmentKind::kWrLockOp, rwlock_id));
}

void
Builder::wrUnlockOp(ThreadId t, std::uint64_t rwlock_id)
{
    append(t, bareOp(SegmentKind::kWrUnlockOp, rwlock_id));
}

Builder::Sites
Builder::rwSweep(ThreadId t, Region region, std::uint64_t count,
                 std::uint64_t rwlock_id, bool write, bool random)
{
    if (write)
        wrLockOp(t, rwlock_id);
    else
        rdLockOp(t, rwlock_id);
    const Sites sites =
        sweep(t, region, count, write ? 0.5 : 0.0, random);
    if (write)
        wrUnlockOp(t, rwlock_id);
    else
        rdUnlockOp(t, rwlock_id);
    return sites;
}

void
Builder::atomicWait(ThreadId t, Region region,
                    std::uint64_t threshold)
{
    Segment segment;
    segment.kind = SegmentKind::kAtomicWaitOp;
    segment.region = region;
    segment.obj = threshold;
    append(t, segment);
}

void
Builder::barrier(ThreadId t, std::uint64_t barrier_id,
                 std::uint32_t participants)
{
    Segment segment;
    segment.kind = SegmentKind::kBarrier;
    segment.obj = barrier_id;
    segment.participants = participants;
    append(t, segment);
}

void
Builder::barrierAll(std::uint64_t barrier_id)
{
    for (ThreadId t = 0; t < scripts_.size(); ++t)
        barrier(t, barrier_id, 0);
}

void
Builder::lockOp(ThreadId t, std::uint64_t lock_id)
{
    Segment segment;
    segment.kind = SegmentKind::kLockOp;
    segment.obj = lock_id;
    append(t, segment);
}

void
Builder::unlockOp(ThreadId t, std::uint64_t lock_id)
{
    Segment segment;
    segment.kind = SegmentKind::kUnlockOp;
    segment.obj = lock_id;
    append(t, segment);
}

void
Builder::recordInjectedRace(
    std::vector<std::pair<SiteId, SiteId>> pairs)
{
    runtime::InjectedRace race;
    race.pairs = std::move(pairs);
    injected_.push_back(std::move(race));
}

std::unique_ptr<SyntheticProgram>
Builder::build()
{
    return std::make_unique<SyntheticProgram>(
        name_, seed_, std::move(scripts_), std::move(injected_));
}

void
injectRace(Builder &builder, ThreadId a, ThreadId b,
           std::uint64_t repeats)
{
    const Region region = builder.alloc(8);
    // Thread a writes; thread b mixes reads and writes. All pairs of
    // (a-access, b-access) with at least one write conflict.
    const auto sa = builder.sweep(a, region, repeats, 1.0);
    const auto sb = builder.sweep(b, region, repeats, 0.5);
    builder.recordInjectedRace({
        {sa.write, sb.write},
        {sa.write, sb.read},
    });
}

void
injectConfiguredRaces(Builder &builder, const WorkloadParams &params)
{
    const std::uint32_t n = builder.nthreads();
    if (n < 2)
        return;
    for (std::uint32_t i = 0; i < params.injected_races; ++i) {
        const ThreadId a = i % n;
        const ThreadId b = (i + 1) % n;
        injectRace(builder, a, b, params.race_repeats);
    }
}

double
detectedFraction(const std::vector<runtime::InjectedRace> &injected,
                 const detect::ReportSink &reports)
{
    if (injected.empty())
        return 1.0;
    std::size_t found = 0;
    for (const auto &race : injected) {
        const bool hit = std::any_of(
            race.pairs.begin(), race.pairs.end(),
            [&](const std::pair<SiteId, SiteId> &pair) {
                return reports.seenPair(pair.first, pair.second);
            });
        if (hit)
            ++found;
    }
    return static_cast<double>(found)
        / static_cast<double>(injected.size());
}

} // namespace hdrd::workloads
