/**
 * @file
 * Long-stream workloads for the large bench tier.
 *
 * Unlike the phoenix/parsec/micro models, whose region sizes are
 * fixed and only op counts scale, these scale their *data* with
 * `WorkloadParams::scale` — at `--scale>=4` the simulated working set
 * (and therefore the detector's shadow footprint) spills host cache,
 * which is the regime the ROADMAP says to measure before optimizing
 * the detector core again. Ops are generated lazily per thread
 * (SyntheticThread::next()), so the driver stays O(1) memory no
 * matter the stream length.
 *
 * These live in their own registry (streamWorkloads()) rather than
 * allWorkloads(): the golden determinism suite enumerates the latter
 * and its 297 hashes are frozen.
 */

#ifndef HDRD_WORKLOADS_STREAM_HH
#define HDRD_WORKLOADS_STREAM_HH

#include <memory>

#include "runtime/program.hh"
#include "workloads/params.hh"

namespace hdrd::workloads
{

/**
 * Threads stride-scan private slices of one giant region with a 30%
 * write mix, two passes with a barrier between. Race-free and
 * epoch-fast-pathed: pure shadow-footprint streaming.
 */
std::unique_ptr<runtime::Program>
makeStreamScan(const WorkloadParams &params);

/**
 * Random read-mostly (2% writes) traffic over one big shared region:
 * drives read-shared inflation and the pooled-clock path at scale.
 */
std::unique_ptr<runtime::Program>
makeStreamSharedMix(const WorkloadParams &params);

/**
 * 90% of accesses hit a small fixed hot region, 10% random-walk a
 * huge cold region (private slices): cache-resident hot path plus a
 * long tail of cold shadow misses — the TLB/arena stress shape.
 */
std::unique_ptr<runtime::Program>
makeStreamHotCold(const WorkloadParams &params);

} // namespace hdrd::workloads

#endif // HDRD_WORKLOADS_STREAM_HH
