/**
 * @file
 * Registry of every workload model, keyed by name and suite.
 */

#ifndef HDRD_WORKLOADS_REGISTRY_HH
#define HDRD_WORKLOADS_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/program.hh"
#include "workloads/params.hh"

namespace hdrd::workloads
{

/** Factory signature every workload model exposes. */
using WorkloadFactory = std::function<
    std::unique_ptr<runtime::Program>(const WorkloadParams &)>;

/** One registry entry. */
struct WorkloadInfo
{
    std::string name;   ///< e.g. "phoenix.histogram"
    std::string suite;  ///< "phoenix", "parsec", or "micro"
    WorkloadFactory factory;
};

/** Every registered workload, in stable order. */
const std::vector<WorkloadInfo> &allWorkloads();

/**
 * The long-stream large-tier workloads ("stream" suite). Kept out of
 * allWorkloads() on purpose: the golden determinism suite enumerates
 * that list and its 297 hashes are frozen.
 */
const std::vector<WorkloadInfo> &streamWorkloads();

/** Entry by full name (either registry), or nullptr. */
const WorkloadInfo *findWorkload(const std::string &name);

/** All entries of one suite. */
std::vector<WorkloadInfo> suiteWorkloads(const std::string &suite);

} // namespace hdrd::workloads

#endif // HDRD_WORKLOADS_REGISTRY_HH
