#include "workloads/micro.hh"

#include "workloads/synthetic.hh"

namespace hdrd::workloads
{

namespace
{

constexpr std::uint64_t kBaseN = 60000;

} // namespace

std::unique_ptr<runtime::Program>
makeRacyCounter(const WorkloadParams &params)
{
    Builder b("micro.racy_counter", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region counter = b.alloc(8);

    std::vector<std::pair<SiteId, SiteId>> pairs;
    std::vector<Builder::Sites> sites;
    for (ThreadId t = 0; t < params.nthreads; ++t)
        sites.push_back(b.sweep(t, counter, N / 4, 0.5));
    for (std::size_t i = 0; i < sites.size(); ++i) {
        for (std::size_t j = i + 1; j < sites.size(); ++j) {
            pairs.emplace_back(sites[i].write, sites[j].write);
            pairs.emplace_back(sites[i].write, sites[j].read);
            pairs.emplace_back(sites[i].read, sites[j].write);
        }
    }
    b.recordInjectedRace(std::move(pairs));
    return b.build();
}

std::unique_ptr<runtime::Program>
makeRacyOnce(const WorkloadParams &params)
{
    Builder b("micro.racy_once", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region word = b.alloc(8);
    const Region scratch = b.alloc(1024 * 1024);

    // Long private lead-in on every thread.
    for (ThreadId t = 0; t < params.nthreads; ++t)
        b.sweep(t, scratch.slice(t, params.nthreads), N, 0.3);
    // Exactly one unsynchronized write/read pair between threads 0/1.
    const auto w = b.sweep(0, word, 1, 1.0);
    const auto r = b.sweep(1, word, 1, 0.0);
    b.recordInjectedRace({{w.write, r.read}});
    // Long private tail.
    for (ThreadId t = 0; t < params.nthreads; ++t)
        b.sweep(t, scratch.slice(t, params.nthreads), N, 0.3);
    return b.build();
}

std::unique_ptr<runtime::Program>
makeLockedCounter(const WorkloadParams &params)
{
    Builder b("micro.locked_counter", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region counter = b.alloc(8);
    const std::uint64_t lock = b.newLock();

    for (ThreadId t = 0; t < params.nthreads; ++t)
        b.lockedRmw(t, counter, N / 8, lock);
    return b.build();
}

std::unique_ptr<runtime::Program>
makeFalseSharing(const WorkloadParams &params)
{
    Builder b("micro.false_sharing", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    // One cache line; thread t owns word t. Accesses never overlap at
    // word granularity (no races) but collide at line granularity
    // (HITMs on nearly every access).
    const Region line = b.alloc(64);

    for (ThreadId t = 0; t < params.nthreads && t < 8; ++t) {
        const Region my_word{line.base + 8 * t, 8};
        b.sweep(t, my_word, N / 2, 0.7);
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makePingPong(const WorkloadParams &params)
{
    Builder b("micro.ping_pong", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region word = b.alloc(8);
    const std::uint64_t lock = b.newLock();

    // Two threads trade the line back and forth under a lock:
    // race-free, but the cache line HITMs constantly.
    b.lockedRmw(0, word, N / 4, lock);
    b.lockedRmw(1 % params.nthreads, word, N / 4, lock);
    return b.build();
}

std::unique_ptr<runtime::Program>
makeRacyBurst(const WorkloadParams &params)
{
    Builder b("micro.racy_burst", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region scratch = b.alloc(1024 * 1024);
    constexpr int kPhases = 4;

    for (int phase = 0; phase < kPhases; ++phase) {
        for (ThreadId t = 0; t < params.nthreads; ++t)
            b.sweep(t, scratch.slice(t, params.nthreads),
                    N / (kPhases + 1), 0.3);
        // A fresh racy word per burst, threads 0 and 1.
        const Region word = b.alloc(8);
        const auto s0 = b.sweep(0, word, 200, 0.6);
        const auto s1 = b.sweep(1 % params.nthreads, word, 200, 0.6);
        b.recordInjectedRace({{s0.write, s1.write},
                              {s0.write, s1.read},
                              {s0.read, s1.write}});
        b.barrierAll(b.newBarrier());
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makePrivateOnly(const WorkloadParams &params)
{
    Builder b("micro.private_only", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region scratch = b.alloc(2 * 1024 * 1024);

    for (ThreadId t = 0; t < params.nthreads; ++t) {
        b.sweep(t, scratch.slice(t, params.nthreads), N, 0.4);
        b.compute(t, N / 100, 10);
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeUnsafePublish(const WorkloadParams &params)
{
    Builder b("micro.unsafe_publish", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region buffer = b.alloc(4096);
    const Region flag = b.alloc(8);
    const Region scratch = b.alloc(512 * 1024);

    // Producer fills the buffer then raises the flag — with no fence
    // or lock, so flag and buffer accesses all race with the consumer.
    const auto fill = b.sweep(0, buffer, 512, 1.0);
    const auto raise = b.sweep(0, flag, 1, 1.0);
    b.sweep(0, scratch.slice(0, 2), N / 2, 0.2);

    // Consumer polls the flag then reads the buffer.
    const ThreadId consumer = 1 % params.nthreads;
    const auto poll = b.sweep(consumer, flag, 50, 0.0);
    const auto use = b.sweep(consumer, buffer, 512, 0.0);
    b.sweep(consumer, scratch.slice(1, 2), N / 2, 0.2);

    b.recordInjectedRace({{raise.write, poll.read}});
    b.recordInjectedRace({{fill.write, use.read}});
    return b.build();
}

std::unique_ptr<runtime::Program>
makeLockfreeCounter(const WorkloadParams &params)
{
    Builder b("micro.lockfree_counter", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region scratch = b.alloc(512 * 1024);
    const Region counter = b.alloc(8);

    for (ThreadId t = 0; t < params.nthreads; ++t) {
        b.sweep(t, scratch.slice(t, params.nthreads), N / 2, 0.3);
        // Race-free by the atomics' acquire/release ordering, yet
        // every RMW after the first is a protocol-level HITM.
        b.atomicSweep(t, counter, N / 8);
        b.sweep(t, scratch.slice(t, params.nthreads), N / 2, 0.3);
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeAtomicPublish(const WorkloadParams &params)
{
    Builder b("micro.atomic_publish", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region buffer = b.alloc(4096);
    const Region flag = b.alloc(8);
    const Region scratch = b.alloc(512 * 1024);

    // Producer fills the buffer then raises an ATOMIC flag; the
    // consumer futex-waits on the same atomic before reading. The
    // release (RMW) / acquire (wait) pair orders the buffer handoff:
    // race-free.
    b.sweep(0, buffer, 512, 1.0);
    b.atomicSweep(0, flag, 1);
    b.sweep(0, scratch.slice(0, 2), N / 2, 0.2);

    const ThreadId consumer = 1 % params.nthreads;
    b.atomicWait(consumer, flag, 1);
    b.sweep(consumer, buffer, 512, 0.0);
    b.sweep(consumer, scratch.slice(1, 2), N / 2, 0.2);
    return b.build();
}

std::unique_ptr<runtime::Program>
makeRwCache(const WorkloadParams &params)
{
    Builder b("micro.rw_cache", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region cache = b.alloc(32 * 1024);
    const Region scratch = b.alloc(512 * 1024);
    const std::uint64_t rwlock = b.newRwLock();
    constexpr int kRounds = 6;

    for (int round = 0; round < kRounds; ++round) {
        for (ThreadId t = 0; t < params.nthreads; ++t) {
            // Everyone reads the cache; thread (round mod T)
            // refreshes part of it under the write lock.
            b.rwSweep(t, cache, N / (kRounds * 8), rwlock,
                      /*write=*/false, /*random=*/true);
            if (t == static_cast<ThreadId>(round)
                          % params.nthreads) {
                b.rwSweep(t, cache, N / (kRounds * 40), rwlock,
                          /*write=*/true, /*random=*/true);
            }
            b.sweep(t, scratch.slice(t, params.nthreads),
                    N / (kRounds * 2), 0.3);
        }
    }
    return b.build();
}

std::unique_ptr<runtime::Program>
makeRwBuggy(const WorkloadParams &params)
{
    Builder b("micro.rw_buggy", params.nthreads, params.seed);
    const std::uint64_t N = params.scaled(kBaseN);
    const Region cache = b.alloc(256);  // hot: overlap guaranteed
    const Region scratch = b.alloc(512 * 1024);
    const std::uint64_t rwlock = b.newRwLock();
    constexpr int kRounds = 4;

    const ThreadId rogue =
        params.nthreads > 1 ? params.nthreads - 1 : 0;
    std::vector<SiteId> rogue_writes;
    std::vector<SiteId> reader_reads;
    for (int round = 0; round < kRounds; ++round) {
        for (ThreadId t = 0; t < params.nthreads; ++t) {
            if (t == rogue) {
                // BUG: writes under the READ side of the lock, so
                // nothing orders these against concurrent readers.
                b.rdLockOp(t, rwlock);
                const auto w = b.sweep(t, cache, 40, 1.0, true);
                b.rdUnlockOp(t, rwlock);
                rogue_writes.push_back(w.write);
            } else {
                const auto r =
                    b.rwSweep(t, cache, 120, rwlock, false, true);
                reader_reads.push_back(r.read);
            }
            b.sweep(t, scratch.slice(t, params.nthreads),
                    N / (kRounds * 3), 0.3);
        }
    }
    // Ground truth: any rogue write racing any reader counts.
    std::vector<std::pair<SiteId, SiteId>> pairs;
    for (const SiteId w : rogue_writes)
        for (const SiteId r : reader_reads)
            pairs.emplace_back(w, r);
    if (params.nthreads > 1)
        b.recordInjectedRace(std::move(pairs));
    return b.build();
}

} // namespace hdrd::workloads
