/**
 * @file
 * The instrumentation/analysis cost model.
 *
 * The paper's performance results are ratios between runs of the same
 * program under different analysis regimes (native, continuous
 * analysis, demand-driven analysis). We model the regimes' costs in
 * simulated cycles. The defaults are calibrated so that continuous
 * analysis lands in the tens-to-hundreds-of-x slowdown range that
 * commercial happens-before detectors (Intel Inspector XE and
 * ThreadSanitizer-class tools) exhibit; the paper quotes slowdowns up
 * to ~300x. EXPERIMENTS.md records the measured shape against the
 * paper's.
 */

#ifndef HDRD_INSTR_COST_MODEL_HH
#define HDRD_INSTR_COST_MODEL_HH

#include "common/types.hh"

namespace hdrd::instr
{

/**
 * Cycle charges for every tool activity.
 */
struct CostModel
{
    /** Baseline cost of one non-memory (work) unit. */
    Cycle base_work = 1;

    /** Baseline frontend cost of a memory operation (address gen etc.);
     *  the cache hierarchy adds its service latency on top. */
    Cycle base_mem_op = 1;

    /** Baseline cost of a synchronization operation (uncontended). */
    Cycle base_sync = 40;

    /**
     * Per-analyzed-load analysis cost: shadow lookup, epoch compares,
     * possible vector-clock work, in heavily instrumented JITted code.
     */
    Cycle analysis_read = 600;

    /** Per-analyzed-store analysis cost (writes do slightly more). */
    Cycle analysis_write = 700;

    /**
     * Sync-op analysis cost (vector-clock join/copy). Charged whenever
     * the tool is attached — sync analysis is never demand-gated.
     */
    Cycle analysis_sync = 1000;

    /**
     * Dilation multiplier applied to work (non-memory) cycles while
     * per-access analysis is enabled: instrumented code is slower even
     * between memory operations (register pressure, JIT quality).
     */
    double work_dilation_enabled = 2.5;

    /**
     * Dilation applied to work cycles while analysis is *disabled* but
     * the tool is attached (residual cost of the gating fast path).
     */
    double work_dilation_disabled = 1.2;

    /**
     * Residual per-memory-op cost of the gating fast path while
     * analysis is disabled (a test-and-branch in the JITted code).
     */
    Cycle gate_check = 3;

    /**
     * Cost of one analysis enable/disable transition (flipping the
     * instrumented/uninstrumented code versions).
     */
    Cycle transition = 25000;

    /** Cost of taking one PMU overflow interrupt. */
    Cycle pmu_interrupt = 4000;

    /** Compute the analyzed-access charge for a load or store. */
    Cycle analysisCost(bool write) const
    {
        return write ? analysis_write : analysis_read;
    }
};

/** The analysis regimes an execution can run under. */
enum class ToolMode
{
    kNative = 0,     ///< no tool attached at all
    kContinuous,     ///< analysis on for every access (Inspector-like)
    kDemand,         ///< gated analysis (the paper)
};

/** Printable name for a ToolMode. */
const char *toolModeName(ToolMode mode);

} // namespace hdrd::instr

#endif // HDRD_INSTR_COST_MODEL_HH
