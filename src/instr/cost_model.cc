#include "instr/cost_model.hh"

namespace hdrd::instr
{

const char *
toolModeName(ToolMode mode)
{
    switch (mode) {
      case ToolMode::kNative:
        return "native";
      case ToolMode::kContinuous:
        return "continuous";
      case ToolMode::kDemand:
        return "demand";
    }
    return "?";
}

} // namespace hdrd::instr
