/**
 * @file
 * The demand-driven analysis controller — the paper's state machine.
 *
 * Two states: analysis DISABLED (default; the hardware sharing
 * indicator is armed) and analysis ENABLED (every data access runs
 * through the race detector; the software watchdog looks for a chance
 * to switch back off).
 *
 *         HITM overflow interrupt / oracle sharing / sampling window
 *   DISABLED ----------------------------------------------------->
 *   <-----------------------------------------------------  ENABLED
 *          watchdog: sharing ratio quiet for long enough
 *
 * The controller is pure decision logic: the simulator owns the PMU
 * and charges transition/interrupt costs based on what the controller
 * reports.
 */

#ifndef HDRD_DEMAND_CONTROLLER_HH
#define HDRD_DEMAND_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "demand/sharing_monitor.hh"
#include "demand/strategy.hh"
#include "detect/detector.hh"

namespace hdrd::demand
{

/** One enable/disable transition, for timelines and tests. */
struct Transition
{
    bool to_enabled = false;

    /** Global access index at which the transition happened. */
    std::uint64_t at_access = 0;

    /**
     * Thread the transition applied to; kInvalidThread for global
     * transitions (the paper's configuration).
     */
    ThreadId tid = kInvalidThread;
};

/**
 * The analysis-gating state machine.
 */
class DemandController
{
  public:
    DemandController(const GatingConfig &config, Rng rng);

    /** Is per-access analysis enabled for any thread? */
    bool enabled() const { return enabled_; }

    /**
     * Is analysis enabled for @p tid? Equals enabled() under the
     * paper's global scope; consults the per-thread bit under
     * EnableScope::kPerThread.
     */
    bool enabledFor(ThreadId tid) const;

    /** Gating configuration. */
    const GatingConfig &config() const { return config_; }

    /**
     * Should @p tid's next data access run through the detector?
     * Equals enabledFor() in FailsafeMode::kDemand; in escalated
     * failsafe modes the answer additionally covers the sampling
     * duty cycle (kSampling) or everything (kContinuous).
     */
    bool shouldAnalyze(ThreadId tid) const
    {
        switch (failsafe_mode_) {
          case FailsafeMode::kContinuous:
            return true;
          case FailsafeMode::kSampling:
            return accesses_ % config_.failsafe.sampling_period
                       < config_.failsafe.sampling_on
                || enabledFor(tid);
          case FailsafeMode::kDemand:
            break;
        }
        return enabledFor(tid);
    }

    /**
     * A HITM overflow interrupt arrived (kDemandHitm) while thread
     * @p tid was running on the interrupted core.
     * @return true when this caused a disable->enable transition.
     */
    bool onInterrupt(ThreadId tid = 0);

    /**
     * Ground-truth sharing observed (kDemandOracle) on @p tid.
     * @return true when this caused a disable->enable transition.
     */
    bool onOracleSharing(ThreadId tid = 0);

    /**
     * Account one data access (any mode, analyzed or not); drives the
     * sampling-window strategy.
     * @return true when a sampling-window boundary toggled the state.
     */
    bool onAccessBoundary();

    /**
     * Feed the outcome of an analyzed access to the watchdog.
     * @return true when the watchdog just disabled analysis.
     */
    bool onAnalyzedAccess(const detect::AccessOutcome &outcome);

    /**
     * One health window's signal measurements (failsafe escalation
     * must be enabled in config().failsafe). Flap rate is computed
     * internally from the transition counters.
     * @return true when the failsafe mode changed.
     */
    bool onSignalHealth(const SignalHealth &health);

    /** Current rung of the failsafe ladder. */
    FailsafeMode failsafeMode() const { return failsafe_mode_; }

    /** Total one-step escalations (demand->sampling->continuous). */
    std::uint64_t escalations() const { return escalations_; }

    /** Total one-step de-escalations. */
    std::uint64_t deescalations() const { return deescalations_; }

    /** Interrupts ignored by the enable-side hysteresis holdoff. */
    std::uint64_t ignoredInterrupts() const
    {
        return ignored_interrupts_;
    }

    /** Total disable->enable transitions. */
    std::uint64_t enables() const { return enables_; }

    /** Total enable->disable transitions. */
    std::uint64_t disables() const { return disables_; }

    /** Full transition history (timeline rendering, tests). */
    const std::vector<Transition> &transitions() const
    {
        return transitions_;
    }

    /** Global accesses seen (via onAccessBoundary). */
    std::uint64_t accessesSeen() const { return accesses_; }

  private:
    void enable(ThreadId tid);
    void disable();

    GatingConfig config_;
    Rng rng_;
    SharingMonitor monitor_;
    bool enabled_ = false;
    std::vector<bool> thread_enabled_;  ///< kPerThread scope only
    std::uint64_t accesses_ = 0;
    std::uint64_t enables_ = 0;
    std::uint64_t disables_ = 0;
    std::vector<Transition> transitions_;

    // Enable-side hysteresis (config_.failsafe.enable_holdoff > 0).
    std::uint64_t holdoff_until_ = 0;   ///< accesses_ gate
    std::uint64_t cur_holdoff_ = 0;     ///< grows under flapping
    std::uint64_t last_enable_at_ = 0;  ///< start of enabled span
    std::uint64_t ignored_interrupts_ = 0;

    // Failsafe ladder (config_.failsafe.escalation).
    FailsafeMode failsafe_mode_ = FailsafeMode::kDemand;
    std::uint32_t unhealthy_streak_ = 0;
    std::uint32_t healthy_streak_ = 0;
    std::uint64_t escalations_ = 0;
    std::uint64_t deescalations_ = 0;
    std::uint64_t transitions_at_health_ = 0;
};

} // namespace hdrd::demand

#endif // HDRD_DEMAND_CONTROLLER_HH
