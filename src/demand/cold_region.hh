/**
 * @file
 * LiteRace-style cold-region adaptive sampler.
 *
 * Hypothesis (LiteRace, PLDI'09): data races hide in rarely exercised
 * code, so sample each static site aggressively while it is cold and
 * back off as it gets hot. Each site starts at rate 1.0; every
 * *sampled* execution multiplies its rate by the decay until the
 * floor.
 */

#ifndef HDRD_DEMAND_COLD_REGION_HH
#define HDRD_DEMAND_COLD_REGION_HH

#include <unordered_map>

#include "common/rng.hh"
#include "common/types.hh"

namespace hdrd::demand
{

/**
 * Per-site decaying sampling rates.
 */
class ColdRegionSampler
{
  public:
    /**
     * @param decay multiplicative rate decay per sampled access
     * @param floor minimum rate (keeps a trickle of hot-site checks)
     * @param rng seeded generator for the sampling draws
     */
    ColdRegionSampler(double decay, double floor, Rng rng);

    /**
     * Decide whether this execution of @p site is analyzed; decays
     * the site's rate when it is.
     */
    bool shouldAnalyze(SiteId site);

    /** Current rate of @p site (1.0 if never seen). */
    double rate(SiteId site) const;

    /** Distinct sites tracked. */
    std::size_t sitesSeen() const { return rates_.size(); }

  private:
    double decay_;
    double floor_;
    Rng rng_;
    std::unordered_map<SiteId, double> rates_;
};

} // namespace hdrd::demand

#endif // HDRD_DEMAND_COLD_REGION_HH
