/**
 * @file
 * The software sharing watchdog: decides when analysis can turn off.
 *
 * While per-access analysis is enabled, the detector reports for each
 * analyzed access whether the touched granule's prior state involved
 * another thread. The watchdog integrates this signal over windows of
 * analyzed accesses; after enough consecutive windows with a sharing
 * ratio below threshold, it recommends disabling analysis and
 * re-arming the hardware sharing indicator.
 */

#ifndef HDRD_DEMAND_SHARING_MONITOR_HH
#define HDRD_DEMAND_SHARING_MONITOR_HH

#include <cstdint>

namespace hdrd::demand
{

/** Watchdog parameters. */
struct WatchdogConfig
{
    /** Analyzed accesses per measurement window. */
    std::uint64_t window = 2000;

    /** Sharing ratio below which a window counts as quiet. */
    double sharing_threshold = 0.02;

    /** Consecutive quiet windows required before disabling. */
    std::uint32_t quiet_windows = 2;

    /** Never disable before this many analyzed accesses post-enable. */
    std::uint64_t min_enabled_accesses = 6000;
};

/**
 * Windowed sharing-ratio integrator.
 */
class SharingMonitor
{
  public:
    explicit SharingMonitor(const WatchdogConfig &config);

    /** Reset all window state (call on every analysis enable). */
    void reset();

    /**
     * Record one analyzed access.
     * @param inter_thread the access touched state last used by
     *        another thread
     * @return true when the watchdog now recommends disabling.
     */
    bool recordAnalyzed(bool inter_thread);

    /** Accesses analyzed since the last reset. */
    std::uint64_t analyzedSinceReset() const { return since_reset_; }

    /** Configuration in force. */
    const WatchdogConfig &config() const { return config_; }

  private:
    WatchdogConfig config_;
    std::uint64_t since_reset_ = 0;
    std::uint64_t window_accesses_ = 0;
    std::uint64_t window_shared_ = 0;
    std::uint32_t quiet_streak_ = 0;
};

} // namespace hdrd::demand

#endif // HDRD_DEMAND_SHARING_MONITOR_HH
