#include "demand/controller.hh"

namespace hdrd::demand
{

DemandController::DemandController(const GatingConfig &config, Rng rng)
    : config_(config), rng_(rng), monitor_(config.watchdog)
{
}

bool
DemandController::enabledFor(ThreadId tid) const
{
    // Random sampling has no notion of an interrupted thread; it
    // always toggles globally regardless of the configured scope.
    if (config_.scope == EnableScope::kGlobal
        || config_.strategy == Strategy::kRandomSampling) {
        return enabled_;
    }
    return tid < thread_enabled_.size() && thread_enabled_[tid];
}

void
DemandController::enable(ThreadId tid)
{
    const bool per_thread = config_.scope == EnableScope::kPerThread;
    if (per_thread) {
        if (tid >= thread_enabled_.size())
            thread_enabled_.resize(tid + 1, false);
        thread_enabled_[tid] = true;
    }
    if (!enabled_) {
        // First enable (re)starts the watchdog window.
        monitor_.reset();
        last_enable_at_ = accesses_;
    }
    enabled_ = true;
    ++enables_;
    transitions_.push_back(Transition{
        true, accesses_, per_thread ? tid : kInvalidThread});
}

void
DemandController::disable()
{
    enabled_ = false;
    thread_enabled_.assign(thread_enabled_.size(), false);
    ++disables_;
    transitions_.push_back(Transition{false, accesses_,
                                      kInvalidThread});

    // Enable-side hysteresis: a short enabled span means the signal
    // is flapping (storm of interrupts, each immediately quieted), so
    // the re-arm holdoff backs off exponentially; a stable span
    // resets it to the base value.
    const FailsafeConfig &fs = config_.failsafe;
    if (fs.enable_holdoff == 0)
        return;
    const std::uint64_t span = accesses_ - last_enable_at_;
    if (span < fs.stable_span && cur_holdoff_ > 0) {
        const double grown =
            static_cast<double>(cur_holdoff_) * fs.backoff_factor;
        cur_holdoff_ = grown > static_cast<double>(fs.max_holdoff)
            ? fs.max_holdoff
            : static_cast<std::uint64_t>(grown);
    } else {
        cur_holdoff_ = fs.enable_holdoff;
    }
    if (cur_holdoff_ < fs.enable_holdoff)
        cur_holdoff_ = fs.enable_holdoff;
    holdoff_until_ = accesses_ + cur_holdoff_;
}

bool
DemandController::onInterrupt(ThreadId tid)
{
    if (config_.strategy != Strategy::kDemandHitm)
        return false;
    if (config_.failsafe.enable_holdoff > 0
        && accesses_ < holdoff_until_) {
        ++ignored_interrupts_;
        return false;
    }
    if (enabledFor(tid))
        return false;
    enable(tid);
    return true;
}

bool
DemandController::onSignalHealth(const SignalHealth &health)
{
    const FailsafeConfig &fs = config_.failsafe;
    if (!fs.escalation)
        return false;

    const std::uint64_t flaps =
        enables_ + disables_ - transitions_at_health_;
    transitions_at_health_ = enables_ + disables_;

    const bool unhealthy = health.drop_ratio > fs.max_drop_ratio
        || health.skid_rms > fs.max_skid_rms
        || health.suppressed > fs.max_suppressed
        || flaps > fs.max_flaps;

    if (unhealthy) {
        healthy_streak_ = 0;
        if (++unhealthy_streak_ >= fs.trip_windows
            && failsafe_mode_ != FailsafeMode::kContinuous) {
            failsafe_mode_ =
                failsafe_mode_ == FailsafeMode::kDemand
                    ? FailsafeMode::kSampling
                    : FailsafeMode::kContinuous;
            ++escalations_;
            unhealthy_streak_ = 0;
            return true;
        }
        return false;
    }

    unhealthy_streak_ = 0;
    if (++healthy_streak_ >= fs.recover_windows
        && failsafe_mode_ != FailsafeMode::kDemand) {
        failsafe_mode_ =
            failsafe_mode_ == FailsafeMode::kContinuous
                ? FailsafeMode::kSampling
                : FailsafeMode::kDemand;
        ++deescalations_;
        healthy_streak_ = 0;
        return true;
    }
    return false;
}

bool
DemandController::onOracleSharing(ThreadId tid)
{
    if (config_.strategy != Strategy::kDemandOracle)
        return false;
    if (enabledFor(tid))
        return false;
    enable(tid);
    return true;
}

bool
DemandController::onAccessBoundary()
{
    ++accesses_;
    if (config_.strategy != Strategy::kRandomSampling)
        return false;
    if (accesses_ % config_.sampling_window != 0)
        return false;
    const bool next = rng_.nextBool(config_.sampling_rate);
    if (next == enabled_)
        return false;
    if (next)
        enable(0);
    else
        disable();
    return true;
}

bool
DemandController::onAnalyzedAccess(const detect::AccessOutcome &outcome)
{
    if (!enabled_ || config_.strategy == Strategy::kRandomSampling)
        return false;
    if (!monitor_.recordAnalyzed(outcome.inter_thread))
        return false;
    disable();
    return true;
}

} // namespace hdrd::demand
