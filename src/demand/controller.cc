#include "demand/controller.hh"

namespace hdrd::demand
{

DemandController::DemandController(const GatingConfig &config, Rng rng)
    : config_(config), rng_(rng), monitor_(config.watchdog)
{
}

bool
DemandController::enabledFor(ThreadId tid) const
{
    // Random sampling has no notion of an interrupted thread; it
    // always toggles globally regardless of the configured scope.
    if (config_.scope == EnableScope::kGlobal
        || config_.strategy == Strategy::kRandomSampling) {
        return enabled_;
    }
    return tid < thread_enabled_.size() && thread_enabled_[tid];
}

void
DemandController::enable(ThreadId tid)
{
    const bool per_thread = config_.scope == EnableScope::kPerThread;
    if (per_thread) {
        if (tid >= thread_enabled_.size())
            thread_enabled_.resize(tid + 1, false);
        thread_enabled_[tid] = true;
    }
    if (!enabled_) {
        // First enable (re)starts the watchdog window.
        monitor_.reset();
    }
    enabled_ = true;
    ++enables_;
    transitions_.push_back(Transition{
        true, accesses_, per_thread ? tid : kInvalidThread});
}

void
DemandController::disable()
{
    enabled_ = false;
    thread_enabled_.assign(thread_enabled_.size(), false);
    ++disables_;
    transitions_.push_back(Transition{false, accesses_,
                                      kInvalidThread});
}

bool
DemandController::onInterrupt(ThreadId tid)
{
    if (config_.strategy != Strategy::kDemandHitm)
        return false;
    if (enabledFor(tid))
        return false;
    enable(tid);
    return true;
}

bool
DemandController::onOracleSharing(ThreadId tid)
{
    if (config_.strategy != Strategy::kDemandOracle)
        return false;
    if (enabledFor(tid))
        return false;
    enable(tid);
    return true;
}

bool
DemandController::onAccessBoundary()
{
    ++accesses_;
    if (config_.strategy != Strategy::kRandomSampling)
        return false;
    if (accesses_ % config_.sampling_window != 0)
        return false;
    const bool next = rng_.nextBool(config_.sampling_rate);
    if (next == enabled_)
        return false;
    if (next)
        enable(0);
    else
        disable();
    return true;
}

bool
DemandController::onAnalyzedAccess(const detect::AccessOutcome &outcome)
{
    if (!enabled_ || config_.strategy == Strategy::kRandomSampling)
        return false;
    if (!monitor_.recordAnalyzed(outcome.inter_thread))
        return false;
    disable();
    return true;
}

} // namespace hdrd::demand
