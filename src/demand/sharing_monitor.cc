#include "demand/sharing_monitor.hh"

#include "common/logging.hh"

namespace hdrd::demand
{

SharingMonitor::SharingMonitor(const WatchdogConfig &config)
    : config_(config)
{
    hdrdAssert(config.window > 0, "watchdog window must be positive");
}

void
SharingMonitor::reset()
{
    since_reset_ = 0;
    window_accesses_ = 0;
    window_shared_ = 0;
    quiet_streak_ = 0;
}

bool
SharingMonitor::recordAnalyzed(bool inter_thread)
{
    ++since_reset_;
    ++window_accesses_;
    if (inter_thread)
        ++window_shared_;

    if (window_accesses_ < config_.window)
        return false;

    const double ratio = static_cast<double>(window_shared_)
        / static_cast<double>(window_accesses_);
    window_accesses_ = 0;
    window_shared_ = 0;

    if (ratio < config_.sharing_threshold)
        ++quiet_streak_;
    else
        quiet_streak_ = 0;

    return quiet_streak_ >= config_.quiet_windows
        && since_reset_ >= config_.min_enabled_accesses;
}

} // namespace hdrd::demand
