#include "demand/cold_region.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hdrd::demand
{

ColdRegionSampler::ColdRegionSampler(double decay, double floor,
                                     Rng rng)
    : decay_(decay), floor_(floor), rng_(rng)
{
    hdrdAssert(decay > 0.0 && decay <= 1.0,
               "cold-region decay must be in (0, 1]");
    hdrdAssert(floor >= 0.0 && floor <= 1.0,
               "cold-region floor must be in [0, 1]");
}

bool
ColdRegionSampler::shouldAnalyze(SiteId site)
{
    auto [it, inserted] = rates_.try_emplace(site, 1.0);
    double &rate = it->second;
    if (!rng_.nextBool(rate))
        return false;
    rate = std::max(floor_, rate * decay_);
    return true;
}

double
ColdRegionSampler::rate(SiteId site) const
{
    auto it = rates_.find(site);
    return it == rates_.end() ? 1.0 : it->second;
}

} // namespace hdrd::demand
