#include "demand/strategy.hh"

namespace hdrd::demand
{

const char *
strategyName(Strategy strategy)
{
    switch (strategy) {
      case Strategy::kDemandHitm:
        return "demand-hitm";
      case Strategy::kDemandOracle:
        return "demand-oracle";
      case Strategy::kRandomSampling:
        return "random-sampling";
      case Strategy::kColdRegion:
        return "cold-region";
      case Strategy::kWatchlist:
        return "watchlist";
    }
    return "?";
}

const char *
failsafeModeName(FailsafeMode mode)
{
    switch (mode) {
      case FailsafeMode::kDemand:
        return "demand";
      case FailsafeMode::kSampling:
        return "sampling";
      case FailsafeMode::kContinuous:
        return "continuous";
    }
    return "?";
}

const char *
scopeName(EnableScope scope)
{
    switch (scope) {
      case EnableScope::kGlobal:
        return "global";
      case EnableScope::kPerThread:
        return "per-thread";
    }
    return "?";
}

} // namespace hdrd::demand
