/**
 * @file
 * Gating strategies: how demand-driven analysis decides to turn on.
 */

#ifndef HDRD_DEMAND_STRATEGY_HH
#define HDRD_DEMAND_STRATEGY_HH

#include <cstdint>
#include <vector>

#include "demand/sharing_monitor.hh"
#include "pmu/counter.hh"

namespace hdrd::demand
{

/**
 * How the demand-driven controller obtains its "sharing is happening"
 * signal.
 */
enum class Strategy : std::uint8_t
{
    /**
     * The paper: arm the PMU on HITM loads; an overflow interrupt
     * enables analysis. Subject to every hardware limitation —
     * W->R-only visibility, eviction losses, sampling, skid.
     */
    kDemandHitm = 0,

    /**
     * Idealized indicator: enables on *ground-truth* inter-thread
     * sharing of any flavour (W->R, W->W, R->W), with no cache or
     * sampling losses. Upper bound for the accuracy of any
     * sharing-gated scheme.
     */
    kDemandOracle,

    /**
     * No indicator at all: analysis toggles on for randomly chosen
     * windows of accesses (PACER-style global sampling baseline for
     * the strategy ablation).
     */
    kRandomSampling,

    /**
     * LiteRace-style cold-region adaptive sampling: each static site
     * starts fully analyzed and its sampling rate decays as it gets
     * hot, on the theory that races live in rarely exercised code.
     * Per-access decisions; no global enabled state.
     */
    kColdRegion,

    /**
     * Watchlist confirmation mode: analyze only accesses to a fixed
     * set of suspect granules (e.g., the addresses a previous cheap
     * demand-driven run reported). The second phase of a find-then-
     * confirm workflow.
     */
    kWatchlist,
};

/** Printable name for a Strategy. */
const char *strategyName(Strategy strategy);

/**
 * Which threads an enable applies to.
 *
 * The paper enables analysis globally (every thread) on an interrupt;
 * kPerThread is our extension ablation: only the interrupted thread's
 * analysis turns on, trading detection of cross-thread pairs whose
 * first access runs on a still-disabled thread for lower overhead.
 */
enum class EnableScope : std::uint8_t
{
    kGlobal = 0,
    kPerThread,
};

/** Printable name for an EnableScope. */
const char *scopeName(EnableScope scope);

/**
 * Failsafe degradation ladder. When the hardware signal's health goes
 * bad (samples lost, interrupts throttled, controller flapping), the
 * controller stops trusting the indicator and degrades *gracefully*:
 * first to a deterministic sampling-window duty cycle, then to full
 * continuous analysis — trading overhead for not silently missing
 * races. It climbs back down when the signal recovers.
 */
enum class FailsafeMode : std::uint8_t
{
    kDemand = 0,  ///< trust the indicator (normal operation)
    kSampling,    ///< duty-cycle analysis windows, indicator as canary
    kContinuous,  ///< analyze everything, indicator as canary
};

/** Printable name for a FailsafeMode. */
const char *failsafeModeName(FailsafeMode mode);

/**
 * One health-evaluation window's view of the hardware signal,
 * computed by the simulator from fault-model / PMU deltas.
 */
struct SignalHealth
{
    /** Fraction of armed-event occurrences lost before the sampler. */
    double drop_ratio = 0.0;

    /** RMS of fault-injected extra skid over the window's samples. */
    double skid_rms = 0.0;

    /** Overflow deliveries throttled/coalesced away in the window. */
    std::uint64_t suppressed = 0;
};

/**
 * Hardening knobs for the demand controller. Every default is "off":
 * a default-constructed config leaves the controller's behaviour
 * bit-identical to the unhardened state machine.
 */
struct FailsafeConfig
{
    /**
     * Enable-side hysteresis: after a watchdog disable, overflow
     * interrupts are ignored for this many accesses before the next
     * enable is honoured (0 = off). Under interrupt storms the
     * holdoff grows exponentially (re-arm backoff).
     */
    std::uint64_t enable_holdoff = 0;

    /** Holdoff multiplier applied when the controller is flapping. */
    double backoff_factor = 2.0;

    /** Ceiling on the grown holdoff, in accesses. */
    std::uint64_t max_holdoff = 1 << 20;

    /**
     * An enabled span at least this many accesses long counts as
     * stable and resets the backoff to enable_holdoff.
     */
    std::uint64_t stable_span = 2000;

    /** Master switch for the escalation ladder. */
    bool escalation = false;

    /** Health-evaluation window length in accesses. */
    std::uint64_t health_window = 20000;

    /** Trip threshold: window sample-loss ratio. */
    double max_drop_ratio = 0.35;

    /** Trip threshold: window skid RMS in retired ops. */
    double max_skid_rms = 48.0;

    /** Trip threshold: suppressed deliveries per window. */
    std::uint64_t max_suppressed = 4;

    /** Trip threshold: enable/disable transitions per window. */
    std::uint64_t max_flaps = 8;

    /** Consecutive unhealthy windows before escalating one step. */
    std::uint32_t trip_windows = 2;

    /** Consecutive healthy windows before de-escalating one step. */
    std::uint32_t recover_windows = 4;

    /** kSampling rung: accesses analyzed per duty period. */
    std::uint64_t sampling_on = 5000;

    /** kSampling rung: duty period length in accesses. */
    std::uint64_t sampling_period = 20000;

    /** True when any hardening behaviour is switched on. */
    bool any() const { return escalation || enable_holdoff > 0; }
};

/** Full configuration of the demand-driven gating machinery. */
struct GatingConfig
{
    Strategy strategy = Strategy::kDemandHitm;

    /** Enable scope: the paper's global enable, or per-thread. */
    EnableScope scope = EnableScope::kGlobal;

    /**
     * PEBS precise capture (extension): real PEBS records the data
     * address and context of the sampled load. When set, the access
     * that raised the enabling interrupt is fed to the detector
     * retroactively, so the triggering W->R pair itself can be
     * caught rather than only subsequent repetitions.
     */
    bool pebs_precise_capture = false;

    /** PMU programming for kDemandHitm. */
    pmu::CounterConfig hitm_counter{
        .event = pmu::EventType::kHitmLoad,
        .sample_after = 1,
        .skid = 4,
        .auto_rearm = true,
    };

    /** Software watchdog driving the disable decision. */
    WatchdogConfig watchdog;

    /** Hardening against a degraded hardware signal. */
    FailsafeConfig failsafe;

    /**
     * Staleness bound on PEBS-captured addresses: a latched sample
     * older than this many accesses at interrupt delivery is not
     * retro-analyzed (the address likely no longer matches the
     * sharing it reported). 0 = unbounded.
     */
    std::uint64_t pebs_staleness = 0;

    /** kRandomSampling: probability each window runs analyzed. */
    double sampling_rate = 0.01;

    /** kRandomSampling: window length in accesses. */
    std::uint64_t sampling_window = 10000;

    /** kColdRegion: multiplicative rate decay per sampled access. */
    double cold_decay = 0.995;

    /** kColdRegion: floor the per-site rate never decays below. */
    double cold_floor = 0.001;

    /**
     * kWatchlist: detection granules (addr >> granule_shift) whose
     * accesses are analyzed; everything else runs native-speed.
     */
    std::vector<std::uint64_t> watchlist;
};

} // namespace hdrd::demand

#endif // HDRD_DEMAND_STRATEGY_HH
