/**
 * @file
 * Gating strategies: how demand-driven analysis decides to turn on.
 */

#ifndef HDRD_DEMAND_STRATEGY_HH
#define HDRD_DEMAND_STRATEGY_HH

#include <cstdint>
#include <vector>

#include "demand/sharing_monitor.hh"
#include "pmu/counter.hh"

namespace hdrd::demand
{

/**
 * How the demand-driven controller obtains its "sharing is happening"
 * signal.
 */
enum class Strategy : std::uint8_t
{
    /**
     * The paper: arm the PMU on HITM loads; an overflow interrupt
     * enables analysis. Subject to every hardware limitation —
     * W->R-only visibility, eviction losses, sampling, skid.
     */
    kDemandHitm = 0,

    /**
     * Idealized indicator: enables on *ground-truth* inter-thread
     * sharing of any flavour (W->R, W->W, R->W), with no cache or
     * sampling losses. Upper bound for the accuracy of any
     * sharing-gated scheme.
     */
    kDemandOracle,

    /**
     * No indicator at all: analysis toggles on for randomly chosen
     * windows of accesses (PACER-style global sampling baseline for
     * the strategy ablation).
     */
    kRandomSampling,

    /**
     * LiteRace-style cold-region adaptive sampling: each static site
     * starts fully analyzed and its sampling rate decays as it gets
     * hot, on the theory that races live in rarely exercised code.
     * Per-access decisions; no global enabled state.
     */
    kColdRegion,

    /**
     * Watchlist confirmation mode: analyze only accesses to a fixed
     * set of suspect granules (e.g., the addresses a previous cheap
     * demand-driven run reported). The second phase of a find-then-
     * confirm workflow.
     */
    kWatchlist,
};

/** Printable name for a Strategy. */
const char *strategyName(Strategy strategy);

/**
 * Which threads an enable applies to.
 *
 * The paper enables analysis globally (every thread) on an interrupt;
 * kPerThread is our extension ablation: only the interrupted thread's
 * analysis turns on, trading detection of cross-thread pairs whose
 * first access runs on a still-disabled thread for lower overhead.
 */
enum class EnableScope : std::uint8_t
{
    kGlobal = 0,
    kPerThread,
};

/** Printable name for an EnableScope. */
const char *scopeName(EnableScope scope);

/** Full configuration of the demand-driven gating machinery. */
struct GatingConfig
{
    Strategy strategy = Strategy::kDemandHitm;

    /** Enable scope: the paper's global enable, or per-thread. */
    EnableScope scope = EnableScope::kGlobal;

    /**
     * PEBS precise capture (extension): real PEBS records the data
     * address and context of the sampled load. When set, the access
     * that raised the enabling interrupt is fed to the detector
     * retroactively, so the triggering W->R pair itself can be
     * caught rather than only subsequent repetitions.
     */
    bool pebs_precise_capture = false;

    /** PMU programming for kDemandHitm. */
    pmu::CounterConfig hitm_counter{
        .event = pmu::EventType::kHitmLoad,
        .sample_after = 1,
        .skid = 4,
        .auto_rearm = true,
    };

    /** Software watchdog driving the disable decision. */
    WatchdogConfig watchdog;

    /** kRandomSampling: probability each window runs analyzed. */
    double sampling_rate = 0.01;

    /** kRandomSampling: window length in accesses. */
    std::uint64_t sampling_window = 10000;

    /** kColdRegion: multiplicative rate decay per sampled access. */
    double cold_decay = 0.995;

    /** kColdRegion: floor the per-site rate never decays below. */
    double cold_floor = 0.001;

    /**
     * kWatchlist: detection granules (addr >> granule_shift) whose
     * accesses are analyzed; everything else runs native-speed.
     */
    std::vector<std::uint64_t> watchlist;
};

} // namespace hdrd::demand

#endif // HDRD_DEMAND_STRATEGY_HH
