#include "detect/naive_hb.hh"

namespace hdrd::detect
{

NaiveHbDetector::NaiveHbDetector(SyncClocks &clocks, ReportSink &sink,
                                 std::uint32_t granule_shift)
    : clocks_(clocks), sink_(sink), granule_shift_(granule_shift)
{
}

AccessOutcome
NaiveHbDetector::onAccess(ThreadId tid, Addr addr, bool write,
                          SiteId site)
{
    AccessOutcome outcome;
    Var &var = vars_[addr >> granule_shift_];
    const VectorClock &ct = clocks_.clock(tid);

    if (var.touched) {
        // Inter-thread signal: any other thread has a recorded access.
        outcome.inter_thread = !var.writes.soleNonzero(tid)
            || !var.reads.soleNonzero(tid);
    }

    // A prior *write* by an unordered thread races with any access.
    const ThreadId racing_writer =
        var.writes.firstGreaterExcept(ct, tid);
    if (racing_writer != kInvalidThread) {
        outcome.race = true;
        sink_.report(RaceReport{
            .addr = addr,
            .type = write ? RaceType::kWriteWrite
                          : RaceType::kWriteRead,
            .first_tid = racing_writer,
            .first_site = var.w_site,
            .second_tid = tid,
            .second_site = site,
        });
    }

    // A prior *read* by an unordered thread races with a write.
    if (write) {
        const ThreadId racing_reader =
            var.reads.firstGreaterExcept(ct, tid);
        if (racing_reader != kInvalidThread) {
            outcome.race = true;
            sink_.report(RaceReport{
                .addr = addr,
                .type = RaceType::kReadWrite,
                .first_tid = racing_reader,
                .first_site = var.r_site,
                .second_tid = tid,
                .second_site = site,
            });
        }
    }

    if (write) {
        var.writes.set(tid, ct.get(tid));
        var.w_site = site;
    } else {
        var.reads.set(tid, ct.get(tid));
        var.r_site = site;
    }
    var.touched = true;
    return outcome;
}

} // namespace hdrd::detect
