/**
 * @file
 * Two-level shadow memory mapping detection granules to FastTrack
 * variable state.
 *
 * The address space is chunked; chunks materialize lazily on first
 * touch. Detection granularity is configurable (default 8-byte words),
 * matching how commercial detectors shadow aligned machine words.
 */

#ifndef HDRD_DETECT_SHADOW_HH
#define HDRD_DETECT_SHADOW_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"
#include "detect/epoch.hh"
#include "detect/vector_clock.hh"

namespace hdrd::detect
{

/**
 * FastTrack per-variable state.
 *
 * The read side is adaptive: a single epoch while reads stay
 * thread-ordered, inflated to a full vector clock (rvc) once
 * concurrent readers appear.
 */
struct VarState
{
    /** Last write, as an epoch. */
    Epoch w;

    /** Last read epoch; meaningless while rvc is non-null. */
    Epoch r;

    /** Read vector clock; non-null means the variable is read-shared. */
    std::unique_ptr<VectorClock> rvc;

    /** Static site of the last write (for reporting). */
    SiteId w_site = kInvalidSite;

    /** Static site of the most recent read (for reporting). */
    SiteId r_site = kInvalidSite;

    /** True when no access has ever been recorded. */
    bool untouched() const
    {
        return w.empty() && r.empty() && !rvc;
    }
};

/**
 * Lazily materialized shadow memory.
 */
class ShadowMemory
{
  public:
    /**
     * @param granule_shift log2 of the detection granule in bytes
     *        (3 = 8-byte words).
     */
    explicit ShadowMemory(std::uint32_t granule_shift = 3);

    /** Shadow state for the granule containing @p addr. */
    VarState &state(Addr addr);

    /**
     * Shadow state if the granule's chunk is materialized, else null.
     * Never allocates.
     */
    const VarState *peek(Addr addr) const;

    /** Granule-normalized key for @p addr (tests, ground truth). */
    std::uint64_t granule(Addr addr) const
    {
        return addr >> granule_shift_;
    }

    /** Number of materialized chunks. */
    std::size_t chunks() const { return chunks_.size(); }

    /** Drop every chunk (full shadow reset). */
    void clear();

  private:
    static constexpr std::size_t kChunkGranules = 512;

    using Chunk = std::array<VarState, kChunkGranules>;

    std::uint32_t granule_shift_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Chunk>> chunks_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_SHADOW_HH
