/**
 * @file
 * Two-level shadow memory mapping detection granules to FastTrack
 * variable state.
 *
 * The address space is chunked; chunks materialize lazily on first
 * touch. Detection granularity is configurable (default 8-byte words),
 * matching how commercial detectors shadow aligned machine words.
 *
 * Storage is a radix page table rather than a hash map: a granule
 * lookup is one shift plus a directory index, and the last chunk is
 * memoized so streaming accesses skip even that.
 *
 * Hot/cold split: the per-granule VarState is packed to 16 bytes —
 * the last-write epoch plus a tagged union of (last-read epoch |
 * ClockPool index) — so the per-access hot loop touches half the
 * shadow bytes of the old 32-byte layout and four granules share a
 * host cache line. The report-only static sites live in a separate
 * cold SiteTable, written on state transitions and read only when a
 * race is reported.
 *
 * Read-shared variables reference their vector clock by pool index
 * rather than pointer: inflation and collapse recycle pooled clocks
 * instead of hitting the allocator, and clear() retires chunks and
 * clocks in O(1) for reuse by the next job.
 */

#ifndef HDRD_DETECT_SHADOW_HH
#define HDRD_DETECT_SHADOW_HH

#include <cstdint>
#include <unordered_map>

#include "common/radix_table.hh"
#include "common/types.hh"
#include "detect/clock_pool.hh"
#include "detect/epoch.hh"
#include "detect/vector_clock.hh"

namespace hdrd::detect
{

/**
 * FastTrack per-variable state, packed to 16 bytes.
 *
 * The read side is adaptive: a single epoch while reads stay
 * thread-ordered, inflated to a pooled vector clock once concurrent
 * readers appear. Both representations share one 64-bit word: bit 63
 * (never set in a packed epoch, since SyncClocks caps thread ids at
 * Epoch::kMaxTaggableTid) tags the read-shared state, whose low 32
 * bits index the enclosing ShadowMemory's ClockPool.
 */
struct VarState
{
    /** Read-word tag: set = ClockPool index, clear = raw epoch. */
    static constexpr std::uint64_t kSharedBit = std::uint64_t{1} << 63;

    /** Last write, as an epoch. */
    Epoch w;

    /** Tagged read word: epoch bits, or kSharedBit | pool index. */
    std::uint64_t r_bits = 0;

    /** True while the read side is an inflated vector clock. */
    bool readShared() const { return (r_bits & kSharedBit) != 0; }

    /** Last read epoch. Meaningless while readShared(). */
    Epoch r() const { return Epoch::fromBits(r_bits); }

    /** Collapse/update the read side to epoch @p e. */
    void setRead(Epoch e) { r_bits = e.bits(); }

    /** Pool index of the read vector clock. @pre readShared() */
    std::uint32_t rvcIndex() const
    {
        return static_cast<std::uint32_t>(r_bits);
    }

    /** Inflate the read side to pooled clock @p index. */
    void setReadShared(std::uint32_t index)
    {
        r_bits = kSharedBit | index;
    }

    /** True when no access has ever been recorded. */
    bool untouched() const { return w.empty() && r_bits == 0; }
};

static_assert(sizeof(VarState) == 16,
              "VarState must stay a 16-byte hot record");

/**
 * Cold per-granule metadata: the static sites of the last write and
 * last read, needed only to attribute race reports. Packed to two
 * 16-bit slots per granule; the rare site id that does not fit (trace
 * replays can carry arbitrary 32-bit sites) spills to an exact
 * overflow map behind a sentinel.
 */
class SiteTable
{
  public:
    /** Site for the last write to granule @p g (kInvalidSite if none). */
    SiteId writeSite(std::uint64_t g) const
    {
        const Packed *p = table_.peek(g);
        return p == nullptr ? kInvalidSite : unpack(p->w, big_w_, g);
    }

    /** Site for the last read of granule @p g (kInvalidSite if none). */
    SiteId readSite(std::uint64_t g) const
    {
        const Packed *p = table_.peek(g);
        return p == nullptr ? kInvalidSite : unpack(p->r, big_r_, g);
    }

    void setWriteSite(std::uint64_t g, SiteId site)
    {
        pack(table_.get(g).w, big_w_, g, site);
    }

    void setReadSite(std::uint64_t g, SiteId site)
    {
        pack(table_.get(g).r, big_r_, g, site);
    }

    /** Retire every entry in O(1), keeping storage for recycling. */
    void reset()
    {
        table_.reset();
        if (!big_w_.empty())
            big_w_.clear();
        if (!big_r_.empty())
            big_r_.clear();
    }

  private:
    /** "no site recorded" (maps to kInvalidSite). */
    static constexpr std::uint16_t kNone = 0xFFFF;

    /** Sentinel: the exact value lives in the overflow map. */
    static constexpr std::uint16_t kBig = 0xFFFE;

    struct Packed
    {
        std::uint16_t w = kNone;
        std::uint16_t r = kNone;
    };

    using Overflow = std::unordered_map<std::uint64_t, SiteId>;

    static SiteId unpack(std::uint16_t slot, const Overflow &big,
                         std::uint64_t g)
    {
        if (slot == kNone)
            return kInvalidSite;
        if (slot != kBig)
            return slot;
        const auto it = big.find(g);
        return it == big.end() ? kInvalidSite : it->second;
    }

    static void pack(std::uint16_t &slot, Overflow &big,
                     std::uint64_t g, SiteId site)
    {
        if (site < kBig) {
            // Common case, store-avoiding: a sweep re-recording its
            // own site must not dirty the cold line (the rewrite is
            // ~every slow-path access; the dirty eviction is what
            // costs at cache-spilling scale).
            const auto want = static_cast<std::uint16_t>(site);
            if (slot == want)
                return;
            if (slot == kBig)
                big.erase(g);
            slot = want;
            return;
        }
        if (site == kInvalidSite) {
            if (slot == kNone)
                return;
            if (slot == kBig)
                big.erase(g);
            slot = kNone;
            return;
        }
        slot = kBig;
        big[g] = site;
    }

    /** Same chunking as the hot table (see ShadowMemory::kChunkBits). */
    RadixTable<Packed, 9> table_;

    /** Exact values behind kBig sentinels, write/read separately. */
    Overflow big_w_;
    Overflow big_r_;
};

/**
 * Lazily materialized shadow memory.
 */
class ShadowMemory
{
  public:
    /**
     * @param granule_shift log2 of the detection granule in bytes
     *        (3 = 8-byte words).
     */
    explicit ShadowMemory(std::uint32_t granule_shift = 3);

    /** Shadow state for the granule containing @p addr. */
    VarState &state(Addr addr)
    {
        return table_.get(addr >> granule_shift_);
    }

    /**
     * Shadow state if the granule's chunk is materialized, else null.
     * Never allocates.
     */
    const VarState *peek(Addr addr) const
    {
        return table_.peek(addr >> granule_shift_);
    }

    /** Granule-normalized key for @p addr (tests, ground truth). */
    std::uint64_t granule(Addr addr) const
    {
        return addr >> granule_shift_;
    }

    /**
     * Hint the host to pull @p addr's shadow word into cache. Pure
     * performance hint (no allocation, no state change): the
     * simulator issues it before running the cache model so the
     * detector's shadow load overlaps simulation work.
     */
    void prefetch(Addr addr) const
    {
        // Only the hot word: pulling the cold site line here too was
        // measured a net loss — site slots are written only on
        // slow-path transitions, so prefetching them on every access
        // doubles shadow DRAM traffic for a line that mostly goes
        // unused.
        if (const VarState *st = table_.peek(addr >> granule_shift_))
            __builtin_prefetch(st, 1 /* expect write */);
    }

    /** Pool backing the read-shared vector clocks. */
    ClockPool &readClocks() { return pool_; }
    const ClockPool &readClocks() const { return pool_; }

    /** Cold side-table of report-only static sites. */
    SiteTable &sites() { return sites_; }
    const SiteTable &sites() const { return sites_; }

    /** Cold-table site lookups by address (reporting, tests). */
    SiteId writeSite(Addr addr) const
    {
        return sites_.writeSite(addr >> granule_shift_);
    }

    SiteId readSite(Addr addr) const
    {
        return sites_.readSite(addr >> granule_shift_);
    }

    /** Number of live chunks. */
    std::size_t chunks() const { return table_.pages(); }

    /** Chunks held in storage for recycling (live + retired). */
    std::size_t allocatedChunks() const
    {
        return table_.allocatedPages();
    }

    /** Retired chunks revived in place instead of reallocated. */
    std::uint64_t recycledChunks() const
    {
        return table_.recycledPages();
    }

    /**
     * Retire every chunk, site entry, and pooled clock. O(1) in the
     * table size: chunk storage and clock capacity stay parked for
     * the next run instead of going back to the allocator.
     */
    void clear()
    {
        table_.reset();
        sites_.reset();
        pool_.reclaimAll();
    }

    /**
     * Re-aim this shadow at a new job: adopt @p granule_shift and
     * retire all state, recycling storage. Used by engines that keep
     * one ShadowMemory alive across runs.
     */
    void prepare(std::uint32_t granule_shift);

  private:
    /** 512-granule chunks, as before the radix rewrite. */
    static constexpr std::uint32_t kChunkBits = 9;

    std::uint32_t granule_shift_;
    RadixTable<VarState, kChunkBits> table_;
    SiteTable sites_;
    ClockPool pool_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_SHADOW_HH
