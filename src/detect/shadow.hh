/**
 * @file
 * Two-level shadow memory mapping detection granules to FastTrack
 * variable state.
 *
 * The address space is chunked; chunks materialize lazily on first
 * touch. Detection granularity is configurable (default 8-byte words),
 * matching how commercial detectors shadow aligned machine words.
 *
 * Storage is a radix page table rather than a hash map: a granule
 * lookup is one shift plus a directory index, and the last chunk is
 * memoized so streaming accesses skip even that.
 *
 * Read-shared variables point into a ClockPool owned by the shadow
 * rather than carrying a unique_ptr each: inflation and collapse
 * recycle pooled clocks instead of hitting the allocator, and clear()
 * retires chunks and clocks in O(1) for reuse by the next job.
 */

#ifndef HDRD_DETECT_SHADOW_HH
#define HDRD_DETECT_SHADOW_HH

#include <cstdint>

#include "common/radix_table.hh"
#include "common/types.hh"
#include "detect/clock_pool.hh"
#include "detect/epoch.hh"
#include "detect/vector_clock.hh"

namespace hdrd::detect
{

/**
 * FastTrack per-variable state.
 *
 * The read side is adaptive: a single epoch while reads stay
 * thread-ordered, inflated to a full vector clock (rvc) once
 * concurrent readers appear.
 */
struct VarState
{
    /** Last write, as an epoch. */
    Epoch w;

    /** Last read epoch; meaningless while rvc is non-null. */
    Epoch r;

    /**
     * Read vector clock; non-null means the variable is read-shared.
     * Owned by the enclosing ShadowMemory's pool, not this struct —
     * the detector releases it back on collapse.
     */
    VectorClock *rvc = nullptr;

    /** Static site of the last write (for reporting). */
    SiteId w_site = kInvalidSite;

    /** Static site of the most recent read (for reporting). */
    SiteId r_site = kInvalidSite;

    /** True when no access has ever been recorded. */
    bool untouched() const
    {
        return w.empty() && r.empty() && rvc == nullptr;
    }
};

/**
 * Lazily materialized shadow memory.
 */
class ShadowMemory
{
  public:
    /**
     * @param granule_shift log2 of the detection granule in bytes
     *        (3 = 8-byte words).
     */
    explicit ShadowMemory(std::uint32_t granule_shift = 3);

    /** Shadow state for the granule containing @p addr. */
    VarState &state(Addr addr)
    {
        return table_.get(addr >> granule_shift_);
    }

    /**
     * Shadow state if the granule's chunk is materialized, else null.
     * Never allocates.
     */
    const VarState *peek(Addr addr) const
    {
        return table_.peek(addr >> granule_shift_);
    }

    /** Granule-normalized key for @p addr (tests, ground truth). */
    std::uint64_t granule(Addr addr) const
    {
        return addr >> granule_shift_;
    }

    /**
     * Hint the host to pull @p addr's shadow word into cache. Pure
     * performance hint (no allocation, no state change): the
     * simulator issues it before running the cache model so the
     * detector's shadow load overlaps simulation work.
     */
    void prefetch(Addr addr) const
    {
        if (const VarState *st = table_.peek(addr >> granule_shift_))
            __builtin_prefetch(st, 1 /* expect write */);
    }

    /** Pool backing the read-shared vector clocks. */
    ClockPool &readClocks() { return pool_; }
    const ClockPool &readClocks() const { return pool_; }

    /** Number of live chunks. */
    std::size_t chunks() const { return table_.pages(); }

    /** Chunks held in storage for recycling (live + retired). */
    std::size_t allocatedChunks() const
    {
        return table_.allocatedPages();
    }

    /** Retired chunks revived in place instead of reallocated. */
    std::uint64_t recycledChunks() const
    {
        return table_.recycledPages();
    }

    /**
     * Retire every chunk and reclaim every pooled clock. O(1) in the
     * table size: chunk storage and clock capacity stay parked for
     * the next run instead of going back to the allocator.
     */
    void clear()
    {
        table_.reset();
        pool_.reclaimAll();
    }

    /**
     * Re-aim this shadow at a new job: adopt @p granule_shift and
     * retire all state, recycling storage. Used by engines that keep
     * one ShadowMemory alive across runs.
     */
    void prepare(std::uint32_t granule_shift);

  private:
    /** 512-granule chunks, as before the radix rewrite. */
    static constexpr std::uint32_t kChunkBits = 9;

    std::uint32_t granule_shift_;
    RadixTable<VarState, kChunkBits> table_;
    ClockPool pool_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_SHADOW_HH
