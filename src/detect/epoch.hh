/**
 * @file
 * FastTrack epochs: a (thread, clock) pair packed into 64 bits.
 *
 * An epoch c@t says "clock value c of thread t". FastTrack's key
 * optimization replaces most per-variable vector clocks with a single
 * epoch, since almost all variables are only ever ordered through one
 * thread at a time.
 */

#ifndef HDRD_DETECT_EPOCH_HH
#define HDRD_DETECT_EPOCH_HH

#include <cstdint>

#include "common/types.hh"
#include "detect/vector_clock.hh"

namespace hdrd::detect
{

/**
 * Packed epoch: thread id in the top 16 bits, clock in the low 48.
 * The all-zero value is the distinguished "empty" epoch (no access
 * yet): thread 0's clocks start at 1, so 0@0 never arises naturally.
 *
 * The shadow memory stores epochs by their raw bits and claims the
 * top bit as a "read-shared" tag (see detect/shadow.hh), which caps
 * usable thread ids at kMaxTaggableTid; SyncClocks enforces the cap
 * once at construction.
 */
class Epoch
{
  public:
    /** Largest tid whose packed epoch keeps bit 63 clear. */
    static constexpr ThreadId kMaxTaggableTid = 0x7FFF;

    /** The empty epoch (no prior access). */
    constexpr Epoch() : bits_(0) {}

    /** Build c@t. */
    Epoch(ThreadId tid, ClockValue clock)
        : bits_((static_cast<std::uint64_t>(tid) << kTidShift)
                | (clock & kClockMask))
    {
    }

    /** Rebuild an epoch from bits() (shadow tagged-union storage). */
    static constexpr Epoch fromBits(std::uint64_t bits)
    {
        Epoch e;
        e.bits_ = bits;
        return e;
    }

    /** The packed representation (shadow tagged-union storage). */
    constexpr std::uint64_t bits() const { return bits_; }

    /** True when this is the empty epoch. */
    bool empty() const { return bits_ == 0; }

    /** Thread component. */
    ThreadId tid() const
    {
        return static_cast<ThreadId>(bits_ >> kTidShift);
    }

    /** Clock component. */
    ClockValue clock() const { return bits_ & kClockMask; }

    /**
     * Epoch-vs-vector-clock happens-before test: c@t <= V iff
     * c <= V[t]. The empty epoch precedes everything.
     */
    bool leq(const VectorClock &vc) const
    {
        return empty() || clock() <= vc.get(tid());
    }

    bool operator==(const Epoch &other) const = default;

  private:
    static constexpr int kTidShift = 48;
    static constexpr std::uint64_t kClockMask =
        (std::uint64_t{1} << kTidShift) - 1;

    std::uint64_t bits_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_EPOCH_HH
