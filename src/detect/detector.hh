/**
 * @file
 * Abstract per-access race detector interface.
 *
 * Detectors consume data accesses only; synchronization flows through
 * the shared SyncClocks object, which stays up to date even when the
 * demand-driven controller has per-access analysis disabled.
 */

#ifndef HDRD_DETECT_DETECTOR_HH
#define HDRD_DETECT_DETECTOR_HH

#include "common/types.hh"

namespace hdrd::detect
{

/** What one analyzed access revealed. */
struct AccessOutcome
{
    /** A race was detected on this access. */
    bool race = false;

    /**
     * The granule's prior shadow state involved a different thread —
     * the software sharing signal the demand controller's watchdog
     * integrates to decide when to switch analysis back off.
     */
    bool inter_thread = false;
};

/**
 * Per-access analysis interface implemented by FastTrackDetector and
 * NaiveHbDetector.
 */
class Detector
{
  public:
    virtual ~Detector() = default;

    /**
     * Analyze one data access.
     * @param tid accessing thread
     * @param addr byte address
     * @param write true for stores
     * @param site static site id of the access
     */
    virtual AccessOutcome onAccess(ThreadId tid, Addr addr, bool write,
                                   SiteId site) = 0;

    /**
     * Lock acquire/release notifications. Happens-before detectors
     * get their ordering from SyncClocks and ignore these; lockset
     * detectors (Eraser) need the held-lock sets. Like sync-clock
     * maintenance, these are never demand-gated.
     *
     * @param write_mode false for the read side of a reader-writer
     *        lock — such holds protect reads but not writes (a write
     *        under a read lock is unprotected against the readers).
     */
    virtual void onLock(ThreadId tid, std::uint64_t lock_id,
                        bool write_mode = true)
    {
        (void)tid;
        (void)lock_id;
        (void)write_mode;
    }

    virtual void onUnlock(ThreadId tid, std::uint64_t lock_id)
    {
        (void)tid;
        (void)lock_id;
    }

    /** Drop all per-variable shadow state. */
    virtual void clearShadow() = 0;

    /** Human-readable detector name. */
    virtual const char *name() const = 0;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_DETECTOR_HH
