#include "detect/fasttrack.hh"

namespace hdrd::detect
{

FastTrackDetector::FastTrackDetector(SyncClocks &clocks,
                                     ReportSink &sink,
                                     std::uint32_t granule_shift)
    : clocks_(clocks), sink_(sink), shadow_(granule_shift)
{
}

} // namespace hdrd::detect
