#include "detect/fasttrack.hh"

namespace hdrd::detect
{

FastTrackDetector::FastTrackDetector(SyncClocks &clocks,
                                     ReportSink &sink,
                                     std::uint32_t granule_shift)
    : clocks_(clocks), sink_(sink),
      owned_(std::make_unique<ShadowMemory>(granule_shift)),
      shadow_(owned_.get())
{
}

FastTrackDetector::FastTrackDetector(SyncClocks &clocks,
                                     ReportSink &sink,
                                     ShadowMemory &shadow,
                                     std::uint32_t granule_shift)
    : clocks_(clocks), sink_(sink), shadow_(&shadow)
{
    shadow_->prepare(granule_shift);
}

} // namespace hdrd::detect
