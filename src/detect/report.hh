/**
 * @file
 * Race reports and the deduplicating report sink.
 */

#ifndef HDRD_DETECT_REPORT_HH
#define HDRD_DETECT_REPORT_HH

#include <cstdint>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace hdrd::detect
{

/** Kind of conflicting access pair. */
enum class RaceType : std::uint8_t
{
    kWriteWrite = 0,
    kWriteRead,   ///< earlier write, later read
    kReadWrite,   ///< earlier read, later write
};

/** Printable name for a RaceType. */
const char *raceTypeName(RaceType type);

/** One detected data race (a conflicting, unordered access pair). */
struct RaceReport
{
    /** Detection-granule address the race was found on. */
    Addr addr = 0;

    RaceType type = RaceType::kWriteWrite;

    /** Thread and static site of the earlier access. */
    ThreadId first_tid = kInvalidThread;
    SiteId first_site = kInvalidSite;

    /** Thread and static site of the later (current) access. */
    ThreadId second_tid = kInvalidThread;
    SiteId second_site = kInvalidSite;
};

std::ostream &operator<<(std::ostream &os, const RaceReport &report);

/**
 * Collects race reports, deduplicating on the unordered static site
 * pair — the way real tools report one race per instruction pair
 * rather than per dynamic occurrence.
 */
class ReportSink
{
  public:
    /**
     * Record a race.
     * @return true when this site pair had not been reported before.
     */
    bool report(const RaceReport &report);

    /** Unique (site-pair-deduplicated) reports, in discovery order. */
    const std::vector<RaceReport> &reports() const { return reports_; }

    /** Number of unique reports. */
    std::size_t uniqueCount() const { return reports_.size(); }

    /** Total dynamic race events, including duplicates. */
    std::uint64_t dynamicCount() const { return dynamic_count_; }

    /** True when the unordered pair (a, b) has been reported. */
    bool seenPair(SiteId a, SiteId b) const;

    /** Drop all state. */
    void clear();

  private:
    static std::uint64_t pairKey(SiteId a, SiteId b);

    std::vector<RaceReport> reports_;
    std::unordered_set<std::uint64_t> seen_;
    std::uint64_t dynamic_count_ = 0;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_REPORT_HH
