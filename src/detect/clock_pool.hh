/**
 * @file
 * Slab pool for read-shared vector clocks.
 *
 * FastTrack inflates a variable's read metadata from an epoch to a
 * full vector clock only while reads are concurrent, and collapses it
 * back on the next write. With a per-variable unique_ptr that cycle is
 * a malloc/free pair per inflation; under read-heavy workloads the
 * allocator dominates the detector. The pool instead hands out clocks
 * from arena slabs and recycles released ones through a free list —
 * a recycled clock keeps its (possibly heap-promoted) component
 * capacity, so steady-state inflation touches no allocator at all.
 *
 * Not thread-safe: each detector engine owns one pool, matching the
 * one-engine-per-worker service model.
 */

#ifndef HDRD_DETECT_CLOCK_POOL_HH
#define HDRD_DETECT_CLOCK_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/vector_clock.hh"

namespace hdrd::detect
{

/**
 * Arena allocator for VectorClock with free-list recycling.
 *
 * Clocks are addressed by dense 32-bit slab indices rather than raw
 * pointers: index i lives at slab i / kSlabSize, slot i % kSlabSize.
 * That lets the shadow memory store a pooled clock in half a word
 * (the packed VarState tagged union) instead of an 8-byte pointer,
 * while at() stays one shift, one mask, and two dereferences.
 */
class ClockPool
{
  public:
    /** Clocks per slab; slabs are never freed while the pool lives. */
    static constexpr std::uint32_t kSlabSize = 64;

    ClockPool() = default;
    ClockPool(const ClockPool &) = delete;
    ClockPool &operator=(const ClockPool &) = delete;

    /**
     * Hand out the index of an empty clock (recycled when possible).
     * The clock stays owned by the pool; give it back with release().
     */
    std::uint32_t acquire()
    {
        if (!free_.empty()) {
            const std::uint32_t index = free_.back();
            free_.pop_back();
            at(index).reset();
            ++reused_;
            return index;
        }
        if (slabs_.empty() || next_in_slab_ == kSlabSize) {
            slabs_.push_back(
                std::make_unique<VectorClock[]>(kSlabSize));
            next_in_slab_ = 0;
        }
        ++created_;
        const std::uint32_t slab =
            static_cast<std::uint32_t>(slabs_.size() - 1);
        return slab * kSlabSize + next_in_slab_++;
    }

    /** The clock at @p index (valid between acquire and release). */
    VectorClock &at(std::uint32_t index)
    {
        return slabs_[index >> kSlabShift][index & (kSlabSize - 1)];
    }

    const VectorClock &at(std::uint32_t index) const
    {
        return slabs_[index >> kSlabShift][index & (kSlabSize - 1)];
    }

    /** Return @p index to the free list for the next acquire(). */
    void release(std::uint32_t index) { free_.push_back(index); }

    /**
     * Reclaim every outstanding clock at once. Valid only when the
     * owner has dropped all acquired indices (e.g. the shadow table
     * was cleared); cheaper than releasing one by one.
     */
    void reclaimAll()
    {
        free_.clear();
        for (std::size_t s = 0; s < slabs_.size(); ++s) {
            const std::uint32_t limit =
                s + 1 == slabs_.size() ? next_in_slab_ : kSlabSize;
            const std::uint32_t base =
                static_cast<std::uint32_t>(s) * kSlabSize;
            for (std::uint32_t i = 0; i < limit; ++i)
                free_.push_back(base + i);
        }
    }

    /** Clocks ever constructed from slabs. */
    std::uint64_t created() const { return created_; }

    /** Acquires satisfied from the free list. */
    std::uint64_t reused() const { return reused_; }

    /** Clocks currently parked on the free list. */
    std::size_t freeCount() const { return free_.size(); }

  private:
    static constexpr std::uint32_t kSlabShift = 6;
    static_assert(kSlabSize == 1u << kSlabShift);

    std::vector<std::unique_ptr<VectorClock[]>> slabs_;
    std::vector<std::uint32_t> free_;
    std::uint32_t next_in_slab_ = kSlabSize;
    std::uint64_t created_ = 0;
    std::uint64_t reused_ = 0;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_CLOCK_POOL_HH
