/**
 * @file
 * Slab pool for read-shared vector clocks.
 *
 * FastTrack inflates a variable's read metadata from an epoch to a
 * full vector clock only while reads are concurrent, and collapses it
 * back on the next write. With a per-variable unique_ptr that cycle is
 * a malloc/free pair per inflation; under read-heavy workloads the
 * allocator dominates the detector. The pool instead hands out clocks
 * from arena slabs and recycles released ones through a free list —
 * a recycled clock keeps its (possibly heap-promoted) component
 * capacity, so steady-state inflation touches no allocator at all.
 *
 * Not thread-safe: each detector engine owns one pool, matching the
 * one-engine-per-worker service model.
 */

#ifndef HDRD_DETECT_CLOCK_POOL_HH
#define HDRD_DETECT_CLOCK_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/vector_clock.hh"

namespace hdrd::detect
{

/** Arena allocator for VectorClock with free-list recycling. */
class ClockPool
{
  public:
    /** Clocks per slab; slabs are never freed while the pool lives. */
    static constexpr std::uint32_t kSlabSize = 64;

    ClockPool() = default;
    ClockPool(const ClockPool &) = delete;
    ClockPool &operator=(const ClockPool &) = delete;

    /**
     * Hand out an empty clock (recycled when possible). The clock
     * stays owned by the pool; give it back with release().
     */
    VectorClock *acquire()
    {
        if (!free_.empty()) {
            VectorClock *clock = free_.back();
            free_.pop_back();
            clock->reset();
            ++reused_;
            return clock;
        }
        if (slabs_.empty() || next_in_slab_ == kSlabSize) {
            slabs_.push_back(
                std::make_unique<VectorClock[]>(kSlabSize));
            next_in_slab_ = 0;
        }
        ++created_;
        return &slabs_.back()[next_in_slab_++];
    }

    /** Return @p clock to the free list for the next acquire(). */
    void release(VectorClock *clock)
    {
        if (clock != nullptr)
            free_.push_back(clock);
    }

    /**
     * Reclaim every outstanding clock at once. Valid only when the
     * owner has dropped all acquired pointers (e.g. the shadow table
     * was cleared); cheaper than releasing one by one.
     */
    void reclaimAll()
    {
        free_.clear();
        for (std::size_t s = 0; s < slabs_.size(); ++s) {
            const std::uint32_t limit =
                s + 1 == slabs_.size() ? next_in_slab_ : kSlabSize;
            for (std::uint32_t i = 0; i < limit; ++i)
                free_.push_back(&slabs_[s][i]);
        }
    }

    /** Clocks ever constructed from slabs. */
    std::uint64_t created() const { return created_; }

    /** Acquires satisfied from the free list. */
    std::uint64_t reused() const { return reused_; }

    /** Clocks currently parked on the free list. */
    std::size_t freeCount() const { return free_.size(); }

  private:
    std::vector<std::unique_ptr<VectorClock[]>> slabs_;
    std::vector<VectorClock *> free_;
    std::uint32_t next_in_slab_ = kSlabSize;
    std::uint64_t created_ = 0;
    std::uint64_t reused_ = 0;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_CLOCK_POOL_HH
