/**
 * @file
 * Happens-before bookkeeping for synchronization operations.
 *
 * SyncClocks is the always-on half of the detector: the demand-driven
 * scheme never disables synchronization tracking (sync ops are rare
 * and cheap), so the per-thread vector clocks remain correct even
 * while per-access analysis is off. This mirrors the paper's design
 * exactly and is what makes re-enabling analysis sound.
 */

#ifndef HDRD_DETECT_SYNC_STATE_HH
#define HDRD_DETECT_SYNC_STATE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/id_map.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "detect/epoch.hh"
#include "detect/vector_clock.hh"

namespace hdrd::detect
{

/**
 * Per-thread vector clocks plus per-sync-object clocks, updated by the
 * standard happens-before rules (FastTrack conventions).
 */
class SyncClocks
{
  public:
    /** @param nthreads maximum thread count (ids are dense). */
    explicit SyncClocks(std::uint32_t nthreads);

    /** Number of threads. */
    std::uint32_t nthreads() const
    {
        return static_cast<std::uint32_t>(thread_clocks_.size());
    }

    /** Thread @p tid's current vector clock. */
    const VectorClock &clock(ThreadId tid) const
    {
        hdrdAssert(tid < thread_clocks_.size(), "unknown thread ", tid);
        return thread_clocks_[tid];
    }

    /** Thread @p tid's current epoch c@t. */
    Epoch epoch(ThreadId tid) const
    {
        return Epoch(tid, clock(tid).get(tid));
    }

    /** Lock acquire: C_t := C_t join L_m. */
    void acquire(ThreadId tid, std::uint64_t lock_id);

    /** Lock release: L_m := C_t; C_t := inc_t(C_t). */
    void release(ThreadId tid, std::uint64_t lock_id);

    /**
     * Reader-writer lock rules. Readers order only against the last
     * writer; writers order against the last writer AND every reader
     * since (the accumulated reader clock).
     */
    void rdAcquire(ThreadId tid, std::uint64_t rwlock_id);
    void rdRelease(ThreadId tid, std::uint64_t rwlock_id);
    void wrAcquire(ThreadId tid, std::uint64_t rwlock_id);
    void wrRelease(ThreadId tid, std::uint64_t rwlock_id);

    /**
     * Barrier release: called once when the last participant arrives.
     * Every participant's clock becomes the join of all participants,
     * then each ticks its own component — all-to-all ordering across
     * the barrier.
     */
    void barrier(std::span<const ThreadId> participants);

    /** Thread creation: C_child := C_child join C_parent; parent ticks. */
    void fork(ThreadId parent, ThreadId child);

    /** Thread join: C_parent := C_parent join C_child. */
    void join(ThreadId parent, ThreadId child);

    /**
     * Ground-truth ordering query: does thread @p a's moment @p e
     * happen-before thread @p b's current time?
     */
    bool epochOrdered(Epoch e, ThreadId b) const;

    /** Number of distinct lock objects seen (tests). */
    std::size_t locksSeen() const { return lock_clocks_.size(); }

  private:
    /** Per-rwlock clocks: the last writer's, and all readers' joined. */
    struct RwClocks
    {
        VectorClock write;
        VectorClock readers;
    };

    std::vector<VectorClock> thread_clocks_;

    // Open-addressing maps: sync objects are inserted and touched but
    // never erased, so the no-erase IdMap's flat probing beats
    // unordered_map's node allocations on the sync-op path.
    IdMap<VectorClock> lock_clocks_;
    IdMap<RwClocks> rwlock_clocks_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_SYNC_STATE_HH
