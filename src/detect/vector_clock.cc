#include "detect/vector_clock.hh"

#include <algorithm>

namespace hdrd::detect
{

void
VectorClock::promote(std::uint32_t n)
{
    // Double to amortize repeated promotions; the clock never shrinks
    // afterwards, so pooled reuse keeps this capacity.
    std::uint32_t cap = cap_;
    while (cap < n)
        cap *= 2;
    ClockValue *fresh = new ClockValue[cap];
    std::copy_n(data(), size_, fresh);
    delete[] heap_;
    heap_ = fresh;
    cap_ = cap;
}

ThreadId
VectorClock::firstGreaterExcept(const VectorClock &other,
                                ThreadId except) const
{
    const std::uint32_t common = std::min(size_, other.size_);
    const std::size_t hit = simd::kernels().first_greater_except(
        data(), other.data(), common, except);
    if (hit != simd::kNotFound)
        return static_cast<ThreadId>(hit);
    // Beyond other's stored size its components are implicitly zero,
    // so any nonzero component here wins.
    for (std::uint32_t i = common; i < size_; ++i) {
        if (i != except && data()[i] != 0)
            return static_cast<ThreadId>(i);
    }
    return kInvalidThread;
}

bool
VectorClock::operator==(const VectorClock &other) const
{
    const std::uint32_t common = std::min(size_, other.size_);
    if (!std::equal(data(), data() + common, other.data()))
        return false;
    // The longer clock's tail must be all zeros to match the shorter
    // clock's implicit zeros.
    const VectorClock &longer = size_ > other.size_ ? *this : other;
    for (std::uint32_t i = common; i < longer.size_; ++i) {
        if (longer.data()[i] != 0)
            return false;
    }
    return true;
}

std::ostream &
operator<<(std::ostream &os, const VectorClock &vc)
{
    os << '[';
    for (std::uint32_t i = 0; i < vc.size_; ++i) {
        if (i)
            os << ',';
        os << vc.data()[i];
    }
    return os << ']';
}

} // namespace hdrd::detect
