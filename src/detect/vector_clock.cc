#include "detect/vector_clock.hh"

#include <algorithm>

namespace hdrd::detect
{

VectorClock::VectorClock(std::uint32_t nthreads) : clocks_(nthreads, 0)
{
}

void
VectorClock::join(const VectorClock &other)
{
    if (other.clocks_.size() > clocks_.size())
        clocks_.resize(other.clocks_.size(), 0);
    for (std::size_t i = 0; i < other.clocks_.size(); ++i)
        clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
}

ThreadId
VectorClock::firstGreaterExcept(const VectorClock &other,
                                ThreadId except) const
{
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
        if (i == except)
            continue;
        const ClockValue theirs =
            i < other.clocks_.size() ? other.clocks_[i] : 0;
        if (clocks_[i] > theirs)
            return static_cast<ThreadId>(i);
    }
    return kInvalidThread;
}

bool
VectorClock::soleNonzero(ThreadId tid) const
{
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
        if (i != tid && clocks_[i] != 0)
            return false;
    }
    return true;
}

void
VectorClock::clear()
{
    std::fill(clocks_.begin(), clocks_.end(), 0);
}

bool
VectorClock::operator==(const VectorClock &other) const
{
    const std::size_t n =
        std::max(clocks_.size(), other.clocks_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const ClockValue a = i < clocks_.size() ? clocks_[i] : 0;
        const ClockValue b =
            i < other.clocks_.size() ? other.clocks_[i] : 0;
        if (a != b)
            return false;
    }
    return true;
}

std::ostream &
operator<<(std::ostream &os, const VectorClock &vc)
{
    os << '[';
    for (std::size_t i = 0; i < vc.clocks_.size(); ++i) {
        if (i)
            os << ',';
        os << vc.clocks_[i];
    }
    return os << ']';
}

} // namespace hdrd::detect
