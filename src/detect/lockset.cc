#include "detect/lockset.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hdrd::detect
{

LocksetDetector::LocksetDetector(ReportSink &sink,
                                 std::uint32_t granule_shift)
    : sink_(sink), granule_shift_(granule_shift)
{
}

void
LocksetDetector::onLock(ThreadId tid, std::uint64_t lock_id,
                        bool write_mode)
{
    auto &locks = held_[tid];
    if (std::find(locks.begin(), locks.end(), lock_id) == locks.end())
        locks.push_back(lock_id);
    if (write_mode) {
        auto &wlocks = write_held_[tid];
        if (std::find(wlocks.begin(), wlocks.end(), lock_id)
                == wlocks.end()) {
            wlocks.push_back(lock_id);
        }
    }
}

void
LocksetDetector::onUnlock(ThreadId tid, std::uint64_t lock_id)
{
    auto &locks = held_[tid];
    locks.erase(std::remove(locks.begin(), locks.end(), lock_id),
                locks.end());
    auto &wlocks = write_held_[tid];
    wlocks.erase(std::remove(wlocks.begin(), wlocks.end(), lock_id),
                 wlocks.end());
}

std::vector<std::uint64_t>
LocksetDetector::heldLocks(ThreadId tid) const
{
    auto it = held_.find(tid);
    return it == held_.end() ? std::vector<std::uint64_t>{}
                             : it->second;
}

const std::vector<std::uint64_t> &
LocksetDetector::modeLocks(ThreadId tid, bool write)
{
    return write ? write_held_[tid] : held_[tid];
}

void
LocksetDetector::refine(Var &var, ThreadId tid, bool write)
{
    const auto &locks = modeLocks(tid, write);
    std::erase_if(var.candidates, [&](std::uint64_t lock) {
        return std::find(locks.begin(), locks.end(), lock)
            == locks.end();
    });
}

AccessOutcome
LocksetDetector::onAccess(ThreadId tid, Addr addr, bool write,
                          SiteId site)
{
    AccessOutcome outcome;
    Var &var = vars_[addr >> granule_shift_];

    switch (var.state) {
      case State::kVirgin:
        var.state = State::kExclusive;
        var.owner = tid;
        var.candidates = modeLocks(tid, write);
        break;

      case State::kExclusive:
        if (var.owner == tid) {
            // Track the owner's lockset so the eventual transition
            // intersects both sides (sharper than original Eraser,
            // which seeded C(v) from the second thread only and
            // needed a third access to notice a two-lock mismatch).
            var.candidates = modeLocks(tid, write);
            break;
        }
        outcome.inter_thread = true;
        refine(var, tid, write);
        var.state = (write || var.last_was_write)
            ? State::kSharedModified
            : State::kShared;
        break;

      case State::kShared:
        outcome.inter_thread = var.last_tid != tid;
        refine(var, tid, write);
        if (write)
            var.state = State::kSharedModified;
        break;

      case State::kSharedModified:
        outcome.inter_thread = var.last_tid != tid;
        refine(var, tid, write);
        break;
    }

    if (var.state == State::kSharedModified && var.candidates.empty()
        && !var.reported) {
        var.reported = true;
        outcome.race = true;
        sink_.report(RaceReport{
            .addr = addr,
            .type = write
                ? (var.last_was_write ? RaceType::kWriteWrite
                                      : RaceType::kReadWrite)
                : RaceType::kWriteRead,
            .first_tid = var.last_tid,
            .first_site = var.last_site,
            .second_tid = tid,
            .second_site = site,
        });
    }

    var.last_tid = tid;
    var.last_site = site;
    var.last_was_write = write;
    return outcome;
}

} // namespace hdrd::detect
