/**
 * @file
 * Vector clocks for happens-before race detection.
 *
 * Storage is adaptive, SmartTrack-style: components live in a flat
 * ClockValue array that starts as an inline small-vector (no heap
 * traffic for the common <= kInlineSlots-thread case) and promotes to
 * a dense heap array when more threads appear. Demotion never frees:
 * clear() and copy-assign retain capacity, so pooled clocks (see
 * detect/clock_pool.hh) recycle their dense storage across
 * inflation/collapse cycles instead of round-tripping malloc.
 *
 * The O(T) kernels — join, leq, firstGreaterExcept, soleNonzero —
 * run on runtime-dispatched SIMD (detect/clock_simd.hh) over the flat
 * array, with a portable scalar fallback that computes bit-identical
 * results.
 */

#ifndef HDRD_DETECT_VECTOR_CLOCK_HH
#define HDRD_DETECT_VECTOR_CLOCK_HH

#include <algorithm>
#include <cstdint>
#include <ostream>

#include "common/types.hh"
#include "detect/clock_simd.hh"

namespace hdrd::detect
{

/** One thread's logical-clock value. */
using ClockValue = std::uint64_t;

/**
 * A vector clock: one logical clock per thread, sparse-growing.
 *
 * Entries for threads beyond the stored size are implicitly zero, so
 * clocks can be created small and grow lazily as threads appear.
 */
class VectorClock
{
  public:
    /** Components stored inline before promoting to the heap. */
    static constexpr std::uint32_t kInlineSlots = 8;

    // User-provided (not defaulted) so `const VectorClock` default
    // constructs; inline_ stays uninitialized on purpose — size_ == 0
    // guards every read of it.
    VectorClock() {}

    /** Create with @p nthreads explicit zero entries. */
    explicit VectorClock(std::uint32_t nthreads) { grow(nthreads); }

    VectorClock(const VectorClock &other) { *this = other; }

    VectorClock &operator=(const VectorClock &other)
    {
        if (this != &other) {
            reserve(other.size_);
            std::copy_n(other.data(), other.size_, data());
            size_ = other.size_;
        }
        return *this;
    }

    VectorClock(VectorClock &&other) noexcept { stealFrom(other); }

    VectorClock &operator=(VectorClock &&other) noexcept
    {
        if (this != &other) {
            delete[] heap_;
            stealFrom(other);
        }
        return *this;
    }

    ~VectorClock() { delete[] heap_; }

    /** Clock value for @p tid (zero when beyond stored size). */
    ClockValue get(ThreadId tid) const
    {
        return tid < size_ ? data()[tid] : 0;
    }

    /** Set @p tid's component to @p value, growing as needed. */
    void set(ThreadId tid, ClockValue value)
    {
        if (tid >= size_)
            grow(tid + 1);
        data()[tid] = value;
    }

    /**
     * Increment @p tid's component: one grow-and-index pass, not the
     * get-then-set double walk of the std::vector representation.
     */
    void tick(ThreadId tid)
    {
        if (tid >= size_)
            grow(tid + 1);
        ++data()[tid];
    }

    /** Element-wise max with @p other (the "join" of sync ops). */
    void join(const VectorClock &other)
    {
        if (other.size_ == 0)
            return;
        if (other.size_ > size_)
            grow(other.size_);
        simd::kernels().join_max(data(), other.data(), other.size_);
    }

    /**
     * True when this clock happens-before-or-equals @p other:
     * every component of *this is <= the matching component of other.
     */
    bool leq(const VectorClock &other) const
    {
        const std::uint32_t common = std::min(size_, other.size_);
        const simd::KernelTable &k = simd::kernels();
        if (k.any_greater(data(), other.data(), common))
            return false;
        // Components past other's stored size compare against an
        // implicit zero: any nonzero one breaks the order.
        return size_ <= other.size_
            || !k.any_nonzero_except(data() + common, size_ - common,
                                     simd::kNotFound);
    }

    /**
     * First thread (other than @p except) whose component here exceeds
     * the matching component of @p other.
     * @return the witness thread, or kInvalidThread when none exists.
     */
    ThreadId firstGreaterExcept(const VectorClock &other,
                                ThreadId except) const;

    /** True when every nonzero component belongs to @p tid. */
    bool soleNonzero(ThreadId tid) const
    {
        return !simd::kernels().any_nonzero_except(data(), size_, tid);
    }

    /** Number of explicitly stored components. */
    std::uint32_t size() const { return size_; }

    /** Components storable without another promotion. */
    std::uint32_t capacity() const { return cap_; }

    /** True while components still live in the inline small-vector. */
    bool usesInlineStorage() const { return heap_ == nullptr; }

    /**
     * Reset every component to zero. Keeps the stored size and the
     * (possibly heap) capacity, so recycled clocks re-inflate without
     * reallocating.
     */
    void clear() { std::fill_n(data(), size_, ClockValue{0}); }

    /**
     * Drop back to an empty clock while retaining capacity. A reset
     * clock is observably identical to a fresh one, which is what
     * pooled recycling hands back to the detector.
     */
    void reset() { size_ = 0; }

    bool operator==(const VectorClock &other) const;

    friend std::ostream &operator<<(std::ostream &os,
                                    const VectorClock &vc);

    /** Flat component storage (SIMD kernels, tests). */
    const ClockValue *data() const
    {
        // Invariant hint: components past kInlineSlots always live on
        // the heap (grow() promotes before size_ can exceed it).
        // Without this, GCC's range propagation follows the inline
        // branch for size_ > kInlineSlots accesses and reports
        // out-of-bounds writes that cannot happen.
        if (heap_ == nullptr && size_ > kInlineSlots)
            __builtin_unreachable();
        return heap_ != nullptr ? heap_ : inline_;
    }

  private:
    ClockValue *data()
    {
        if (heap_ == nullptr && size_ > kInlineSlots)
            __builtin_unreachable();
        return heap_ != nullptr ? heap_ : inline_;
    }

    /** Ensure capacity >= @p n without touching size or contents. */
    void reserve(std::uint32_t n)
    {
        if (n > cap_)
            promote(n);
    }

    /** Grow the stored size to @p n, zero-filling the new tail. */
    void grow(std::uint32_t n)
    {
        if (n > cap_)
            promote(n);
        std::fill(data() + size_, data() + n, ClockValue{0});
        size_ = n;
    }

    /** Dense promotion: move components to a bigger heap array. */
    void promote(std::uint32_t n);

    void stealFrom(VectorClock &other) noexcept
    {
        size_ = other.size_;
        cap_ = other.cap_;
        heap_ = other.heap_;
        if (heap_ == nullptr)
            std::copy_n(other.inline_, size_, inline_);
        other.heap_ = nullptr;
        other.size_ = 0;
        other.cap_ = kInlineSlots;
    }

    std::uint32_t size_ = 0;
    std::uint32_t cap_ = kInlineSlots;

    /** Dense heap array once promoted; null while inline. */
    ClockValue *heap_ = nullptr;

    ClockValue inline_[kInlineSlots];
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_VECTOR_CLOCK_HH
