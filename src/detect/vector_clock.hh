/**
 * @file
 * Vector clocks for happens-before race detection.
 */

#ifndef HDRD_DETECT_VECTOR_CLOCK_HH
#define HDRD_DETECT_VECTOR_CLOCK_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hh"

namespace hdrd::detect
{

/** One thread's logical-clock value. */
using ClockValue = std::uint64_t;

/**
 * A vector clock: one logical clock per thread, sparse-growing.
 *
 * Entries for threads beyond the stored size are implicitly zero, so
 * clocks can be created small and grow lazily as threads appear.
 */
class VectorClock
{
  public:
    VectorClock() = default;

    /** Create with @p nthreads explicit zero entries. */
    explicit VectorClock(std::uint32_t nthreads);

    /** Clock value for @p tid (zero when beyond stored size). */
    ClockValue get(ThreadId tid) const
    {
        return tid < clocks_.size() ? clocks_[tid] : 0;
    }

    /** Set @p tid's component to @p value, growing as needed. */
    void set(ThreadId tid, ClockValue value)
    {
        if (tid >= clocks_.size())
            clocks_.resize(tid + 1, 0);
        clocks_[tid] = value;
    }

    /** Increment @p tid's component. */
    void tick(ThreadId tid) { set(tid, get(tid) + 1); }

    /** Element-wise max with @p other (the "join" of sync ops). */
    void join(const VectorClock &other);

    /**
     * True when this clock happens-before-or-equals @p other:
     * every component of *this is <= the matching component of other.
     */
    bool leq(const VectorClock &other) const
    {
        for (std::size_t i = 0; i < clocks_.size(); ++i) {
            const ClockValue theirs =
                i < other.clocks_.size() ? other.clocks_[i] : 0;
            if (clocks_[i] > theirs)
                return false;
        }
        return true;
    }

    /**
     * First thread (other than @p except) whose component here exceeds
     * the matching component of @p other.
     * @return the witness thread, or kInvalidThread when none exists.
     */
    ThreadId firstGreaterExcept(const VectorClock &other,
                                ThreadId except) const;

    /** True when every nonzero component belongs to @p tid. */
    bool soleNonzero(ThreadId tid) const;

    /** Number of explicitly stored components. */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(clocks_.size());
    }

    /** Reset every component to zero. */
    void clear();

    bool operator==(const VectorClock &other) const;

    friend std::ostream &operator<<(std::ostream &os,
                                    const VectorClock &vc);

  private:
    std::vector<ClockValue> clocks_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_VECTOR_CLOCK_HH
