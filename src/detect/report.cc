#include "detect/report.hh"

#include <algorithm>

namespace hdrd::detect
{

const char *
raceTypeName(RaceType type)
{
    switch (type) {
      case RaceType::kWriteWrite:
        return "write-write";
      case RaceType::kWriteRead:
        return "write-read";
      case RaceType::kReadWrite:
        return "read-write";
    }
    return "?";
}

std::ostream &
operator<<(std::ostream &os, const RaceReport &report)
{
    return os << raceTypeName(report.type) << " race @0x" << std::hex
              << report.addr << std::dec << ": t" << report.first_tid
              << " site " << report.first_site << " vs t"
              << report.second_tid << " site " << report.second_site;
}

std::uint64_t
ReportSink::pairKey(SiteId a, SiteId b)
{
    const SiteId lo = std::min(a, b);
    const SiteId hi = std::max(a, b);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

bool
ReportSink::report(const RaceReport &report)
{
    ++dynamic_count_;
    if (!seen_.insert(pairKey(report.first_site, report.second_site))
             .second) {
        return false;
    }
    reports_.push_back(report);
    return true;
}

bool
ReportSink::seenPair(SiteId a, SiteId b) const
{
    return seen_.count(pairKey(a, b)) != 0;
}

void
ReportSink::clear()
{
    reports_.clear();
    seen_.clear();
    dynamic_count_ = 0;
}

} // namespace hdrd::detect
