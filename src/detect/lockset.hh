/**
 * @file
 * An Eraser-style lockset race detector.
 *
 * The contemporary alternative to happens-before detection: every
 * shared variable must be consistently protected by at least one
 * lock. Cheaper than vector clocks and insensitive to scheduling, but
 * famously reports false positives on programs synchronized by
 * anything other than locks (barriers, fork/join, atomics) — the
 * comparison `bench/abl6_lockset` quantifies exactly that against
 * FastTrack on this repository's workloads.
 *
 * One deliberate strengthening over the original Eraser: when a
 * variable leaves Exclusive via a *read* after the owner wrote it,
 * the state goes to Shared-Modified rather than Shared (Eraser's
 * read-shared shortcut silently forgave W->R patterns; later lockset
 * tools, like this one, check them).
 */

#ifndef HDRD_DETECT_LOCKSET_HH
#define HDRD_DETECT_LOCKSET_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "detect/detector.hh"
#include "detect/report.hh"

namespace hdrd::detect
{

/**
 * Eraser's state machine with per-variable candidate locksets.
 */
class LocksetDetector : public Detector
{
  public:
    /**
     * @param sink race report collector
     * @param granule_shift log2 bytes of the detection granule
     */
    explicit LocksetDetector(ReportSink &sink,
                             std::uint32_t granule_shift = 3);

    AccessOutcome onAccess(ThreadId tid, Addr addr, bool write,
                           SiteId site) override;

    void onLock(ThreadId tid, std::uint64_t lock_id,
                bool write_mode = true) override;
    void onUnlock(ThreadId tid, std::uint64_t lock_id) override;

    void clearShadow() override { vars_.clear(); }

    const char *name() const override { return "lockset"; }

    /** Locks currently held by @p tid (tests). */
    std::vector<std::uint64_t> heldLocks(ThreadId tid) const;

    /** Number of tracked variables (tests). */
    std::size_t trackedVars() const { return vars_.size(); }

  private:
    /** Eraser variable states. */
    enum class State : std::uint8_t
    {
        kVirgin = 0,
        kExclusive,       ///< touched by exactly one thread so far
        kShared,          ///< read by several threads, never written
                          ///< since becoming shared
        kSharedModified,  ///< written while shared: must stay locked
    };

    struct Var
    {
        State state = State::kVirgin;
        ThreadId owner = kInvalidThread;  ///< kExclusive only

        /** Candidate lockset; meaningful after leaving kExclusive. */
        std::vector<std::uint64_t> candidates;

        /** Last access, for report attribution. */
        ThreadId last_tid = kInvalidThread;
        SiteId last_site = kInvalidSite;
        bool last_was_write = false;

        /** One report per variable, like Eraser. */
        bool reported = false;
    };

    /**
     * Locks protecting this access: all held locks for reads, but
     * only write-mode holds for writes (Eraser's rwlock rule).
     */
    const std::vector<std::uint64_t> &modeLocks(ThreadId tid,
                                                bool write);

    /** Intersect var's candidates with tid's protecting locks. */
    void refine(Var &var, ThreadId tid, bool write);

    ReportSink &sink_;
    std::uint32_t granule_shift_;
    std::unordered_map<std::uint64_t, Var> vars_;
    std::unordered_map<ThreadId, std::vector<std::uint64_t>> held_;
    std::unordered_map<ThreadId, std::vector<std::uint64_t>>
        write_held_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_LOCKSET_HH
