/**
 * @file
 * Runtime-dispatched SIMD kernels for the vector-clock hot loops.
 *
 * The detector's O(T) clock operations — join (element-wise max),
 * happens-before comparison, and racing-witness search — all reduce
 * to unsigned 64-bit lane arithmetic over flat arrays. x86 grew the
 * needed compare (pcmpgtq) in SSE4.2 and 4-wide lanes in AVX2, so the
 * kernels come in three flavours resolved once per process:
 *
 *   scalar  portable reference, always available, and the fallback
 *           on non-x86 hosts;
 *   sse42   2 lanes per step (pcmpgtq + sign-bias for unsigned);
 *   avx2    4 lanes per step.
 *
 * Every flavour computes bit-identical results — the golden
 * determinism suite runs against all of them — and the HDRD_SIMD
 * environment variable (scalar|sse42|avx2|auto) force-caps the level
 * so CI can diff scalar and SIMD runs on the same machine.
 */

#ifndef HDRD_DETECT_CLOCK_SIMD_HH
#define HDRD_DETECT_CLOCK_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace hdrd::detect::simd
{

/** "No index" result for the search kernels. */
constexpr std::size_t kNotFound = ~std::size_t{0};

/**
 * The kernel set, one function pointer per clock primitive. All
 * lengths are in 64-bit elements; all loads/stores are unaligned.
 */
struct KernelTable
{
    /** dst[i] = max(dst[i], src[i]) for i in [0, n). */
    void (*join_max)(std::uint64_t *dst, const std::uint64_t *src,
                     std::size_t n);

    /** True when a[i] > b[i] (unsigned) for any i in [0, n). */
    bool (*any_greater)(const std::uint64_t *a, const std::uint64_t *b,
                        std::size_t n);

    /**
     * Smallest i in [0, n) with i != except and a[i] > b[i]
     * (unsigned), or kNotFound.
     */
    std::size_t (*first_greater_except)(const std::uint64_t *a,
                                        const std::uint64_t *b,
                                        std::size_t n,
                                        std::size_t except);

    /** True when a[i] != 0 for any i in [0, n) with i != except. */
    bool (*any_nonzero_except)(const std::uint64_t *a, std::size_t n,
                               std::size_t except);

    /** Flavour name: "scalar", "sse42", or "avx2". */
    const char *level;
};

/**
 * The process-wide kernel set. Resolved on first use from CPU
 * features capped by HDRD_SIMD; stable afterwards (unless a test
 * calls forceLevel).
 */
const KernelTable &kernels();

/** Name of the active flavour (diagnostics, tests). */
const char *activeLevel();

/**
 * Test hook: force a specific flavour ("scalar", "sse42", "avx2") or
 * re-resolve automatically ("auto"). Returns false — leaving the
 * active set unchanged — when this host cannot run the request.
 * Not thread-safe; call only from single-threaded test setup.
 */
bool forceLevel(const char *level);

} // namespace hdrd::detect::simd

#endif // HDRD_DETECT_CLOCK_SIMD_HH
