#include "detect/clock_simd.hh"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define HDRD_SIMD_X86 1
#include <immintrin.h>
#endif

namespace hdrd::detect::simd
{

namespace
{

// ------------------------------------------------------------------
// Scalar reference flavour. Also the tail loop for the wide flavours
// and the only flavour on non-x86 hosts.
// ------------------------------------------------------------------

void
joinMaxScalar(std::uint64_t *dst, const std::uint64_t *src,
              std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (src[i] > dst[i])
            dst[i] = src[i];
    }
}

bool
anyGreaterScalar(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] > b[i])
            return true;
    }
    return false;
}

std::size_t
firstGreaterExceptScalar(const std::uint64_t *a, const std::uint64_t *b,
                         std::size_t n, std::size_t except)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (i != except && a[i] > b[i])
            return i;
    }
    return kNotFound;
}

bool
anyNonzeroExceptScalar(const std::uint64_t *a, std::size_t n,
                       std::size_t except)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (i != except && a[i] != 0)
            return true;
    }
    return false;
}

constexpr KernelTable kScalarTable = {
    joinMaxScalar,
    anyGreaterScalar,
    firstGreaterExceptScalar,
    anyNonzeroExceptScalar,
    "scalar",
};

#ifdef HDRD_SIMD_X86

// ------------------------------------------------------------------
// SSE4.2: 2 lanes per step. pcmpgtq is a *signed* compare, so both
// sides are biased by 2^63 first (a >u b  <=>  a^bias >s b^bias).
// ------------------------------------------------------------------

__attribute__((target("sse4.2"))) void
joinMaxSse42(std::uint64_t *dst, const std::uint64_t *src,
             std::size_t n)
{
    const __m128i bias = _mm_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        const __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        const __m128i gt = _mm_cmpgt_epi64(_mm_xor_si128(s, bias),
                                           _mm_xor_si128(d, bias));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_blendv_epi8(d, s, gt));
    }
    joinMaxScalar(dst + i, src + i, n - i);
}

__attribute__((target("sse4.2"))) bool
anyGreaterSse42(const std::uint64_t *a, const std::uint64_t *b,
                std::size_t n)
{
    const __m128i bias = _mm_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        const __m128i gt = _mm_cmpgt_epi64(_mm_xor_si128(va, bias),
                                           _mm_xor_si128(vb, bias));
        if (_mm_movemask_epi8(gt) != 0)
            return true;
    }
    return anyGreaterScalar(a + i, b + i, n - i);
}

__attribute__((target("sse4.2"))) std::size_t
firstGreaterExceptSse42(const std::uint64_t *a, const std::uint64_t *b,
                        std::size_t n, std::size_t except)
{
    const __m128i bias = _mm_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        const __m128i gt = _mm_cmpgt_epi64(_mm_xor_si128(va, bias),
                                           _mm_xor_si128(vb, bias));
        int mask = _mm_movemask_pd(_mm_castsi128_pd(gt));
        while (mask != 0) {
            const int lane = __builtin_ctz(
                static_cast<unsigned>(mask));
            const std::size_t idx = i + static_cast<std::size_t>(lane);
            if (idx != except)
                return idx;
            mask &= mask - 1;
        }
    }
    const std::size_t tail =
        firstGreaterExceptScalar(a + i, b + i, n - i,
                                 except >= i ? except - i : kNotFound);
    return tail == kNotFound ? kNotFound : i + tail;
}

__attribute__((target("sse4.2"))) bool
anyNonzeroExceptSse42(const std::uint64_t *a, std::size_t n,
                      std::size_t except)
{
    const __m128i zero = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        int mask =
            _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(va, zero)))
            ^ 0x3;  // set bit = nonzero lane
        while (mask != 0) {
            const int lane = __builtin_ctz(
                static_cast<unsigned>(mask));
            if (i + static_cast<std::size_t>(lane) != except)
                return true;
            mask &= mask - 1;
        }
    }
    return anyNonzeroExceptScalar(a + i, n - i,
                                  except >= i ? except - i : kNotFound);
}

constexpr KernelTable kSse42Table = {
    joinMaxSse42,
    anyGreaterSse42,
    firstGreaterExceptSse42,
    anyNonzeroExceptSse42,
    "sse42",
};

// ------------------------------------------------------------------
// AVX2: 4 lanes per step, same sign-bias trick.
// ------------------------------------------------------------------

__attribute__((target("avx2"))) void
joinMaxAvx2(std::uint64_t *dst, const std::uint64_t *src,
            std::size_t n)
{
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        const __m256i gt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(s, bias), _mm256_xor_si256(d, bias));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_blendv_epi8(d, s, gt));
    }
    joinMaxScalar(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) bool
anyGreaterAvx2(const std::uint64_t *a, const std::uint64_t *b,
               std::size_t n)
{
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i gt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(va, bias), _mm256_xor_si256(vb, bias));
        if (_mm256_movemask_epi8(gt) != 0)
            return true;
    }
    return anyGreaterScalar(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) std::size_t
firstGreaterExceptAvx2(const std::uint64_t *a, const std::uint64_t *b,
                       std::size_t n, std::size_t except)
{
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i gt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(va, bias), _mm256_xor_si256(vb, bias));
        int mask = _mm256_movemask_pd(_mm256_castsi256_pd(gt));
        while (mask != 0) {
            const int lane = __builtin_ctz(
                static_cast<unsigned>(mask));
            const std::size_t idx = i + static_cast<std::size_t>(lane);
            if (idx != except)
                return idx;
            mask &= mask - 1;
        }
    }
    const std::size_t tail =
        firstGreaterExceptScalar(a + i, b + i, n - i,
                                 except >= i ? except - i : kNotFound);
    return tail == kNotFound ? kNotFound : i + tail;
}

__attribute__((target("avx2"))) bool
anyNonzeroExceptAvx2(const std::uint64_t *a, std::size_t n,
                     std::size_t except)
{
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        int mask = _mm256_movemask_pd(
                       _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, zero)))
            ^ 0xF;
        while (mask != 0) {
            const int lane = __builtin_ctz(
                static_cast<unsigned>(mask));
            if (i + static_cast<std::size_t>(lane) != except)
                return true;
            mask &= mask - 1;
        }
    }
    return anyNonzeroExceptScalar(a + i, n - i,
                                  except >= i ? except - i : kNotFound);
}

constexpr KernelTable kAvx2Table = {
    joinMaxAvx2,
    anyGreaterAvx2,
    firstGreaterExceptAvx2,
    anyNonzeroExceptAvx2,
    "avx2",
};

#endif // HDRD_SIMD_X86

/** Highest flavour this host can execute. */
const KernelTable &
bestSupported()
{
#ifdef HDRD_SIMD_X86
    if (__builtin_cpu_supports("avx2"))
        return kAvx2Table;
    if (__builtin_cpu_supports("sse4.2"))
        return kSse42Table;
#endif
    return kScalarTable;
}

/**
 * Flavour named by @p name capped at host support; null when the
 * name is unknown or the host cannot run it.
 */
const KernelTable *
byName(const char *name)
{
    if (std::strcmp(name, "scalar") == 0
        || std::strcmp(name, "off") == 0) {
        return &kScalarTable;
    }
#ifdef HDRD_SIMD_X86
    if (std::strcmp(name, "sse42") == 0
        && __builtin_cpu_supports("sse4.2")) {
        return &kSse42Table;
    }
    if (std::strcmp(name, "avx2") == 0
        && __builtin_cpu_supports("avx2")) {
        return &kAvx2Table;
    }
#endif
    if (std::strcmp(name, "auto") == 0)
        return &bestSupported();
    return nullptr;
}

const KernelTable &
resolve()
{
    if (const char *env = std::getenv("HDRD_SIMD")) {
        if (const KernelTable *t = byName(env))
            return *t;
        // Unknown or unsupported request: fail safe to scalar so a
        // typo degrades performance, never correctness.
        return kScalarTable;
    }
    return bestSupported();
}

/** The active table; swapped only by forceLevel (tests). */
const KernelTable *active = nullptr;

const KernelTable *
activeTable()
{
    if (active == nullptr)
        active = &resolve();
    return active;
}

} // namespace

const KernelTable &
kernels()
{
    return *activeTable();
}

const char *
activeLevel()
{
    return activeTable()->level;
}

bool
forceLevel(const char *level)
{
    if (std::strcmp(level, "auto") == 0) {
        active = &resolve();
        return true;
    }
    const KernelTable *t = byName(level);
    if (t == nullptr)
        return false;
    active = t;
    return true;
}

} // namespace hdrd::detect::simd
