#include "detect/sync_state.hh"

#include "common/logging.hh"

namespace hdrd::detect
{

SyncClocks::SyncClocks(std::uint32_t nthreads)
{
    hdrdAssert(nthreads > 0, "SyncClocks needs at least one thread");
    // The shadow memory claims the top bit of a packed epoch as its
    // read-shared tag, so every tid must keep that bit clear.
    hdrdAssert(nthreads <= Epoch::kMaxTaggableTid + 1,
               "thread id exceeds shadow-taggable range");
    thread_clocks_.resize(nthreads, VectorClock(nthreads));
    // FastTrack convention: each thread starts at clock 1 for itself,
    // which keeps the all-zero epoch free to mean "no access yet".
    for (ThreadId t = 0; t < nthreads; ++t)
        thread_clocks_[t].set(t, 1);
}

void
SyncClocks::acquire(ThreadId tid, std::uint64_t lock_id)
{
    if (const VectorClock *lc = lock_clocks_.find(lock_id))
        thread_clocks_[tid].join(*lc);
}

void
SyncClocks::release(ThreadId tid, std::uint64_t lock_id)
{
    lock_clocks_[lock_id] = thread_clocks_[tid];
    thread_clocks_[tid].tick(tid);
}

void
SyncClocks::rdAcquire(ThreadId tid, std::uint64_t rwlock_id)
{
    if (const RwClocks *rw = rwlock_clocks_.find(rwlock_id))
        thread_clocks_[tid].join(rw->write);
}

void
SyncClocks::rdRelease(ThreadId tid, std::uint64_t rwlock_id)
{
    // Accumulate: the next writer must be ordered after every reader.
    rwlock_clocks_[rwlock_id].readers.join(thread_clocks_[tid]);
    thread_clocks_[tid].tick(tid);
}

void
SyncClocks::wrAcquire(ThreadId tid, std::uint64_t rwlock_id)
{
    if (const RwClocks *rw = rwlock_clocks_.find(rwlock_id)) {
        thread_clocks_[tid].join(rw->write);
        thread_clocks_[tid].join(rw->readers);
    }
}

void
SyncClocks::wrRelease(ThreadId tid, std::uint64_t rwlock_id)
{
    RwClocks &rw = rwlock_clocks_[rwlock_id];
    rw.write = thread_clocks_[tid];
    // Past readers are ordered before this writer already; reset the
    // accumulator so only post-write readers gate the next writer.
    rw.readers.clear();
    thread_clocks_[tid].tick(tid);
}

void
SyncClocks::barrier(std::span<const ThreadId> participants)
{
    VectorClock joined;
    for (ThreadId t : participants)
        joined.join(thread_clocks_[t]);
    for (ThreadId t : participants) {
        thread_clocks_[t] = joined;
        thread_clocks_[t].tick(t);
    }
}

void
SyncClocks::fork(ThreadId parent, ThreadId child)
{
    thread_clocks_[child].join(thread_clocks_[parent]);
    thread_clocks_[parent].tick(parent);
}

void
SyncClocks::join(ThreadId parent, ThreadId child)
{
    thread_clocks_[parent].join(thread_clocks_[child]);
    thread_clocks_[child].tick(child);
}

bool
SyncClocks::epochOrdered(Epoch e, ThreadId b) const
{
    return e.leq(clock(b));
}

} // namespace hdrd::detect
