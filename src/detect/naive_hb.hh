/**
 * @file
 * A DJIT+-style full-vector-clock happens-before detector.
 *
 * Keeps complete per-variable read and write vector clocks. Slower and
 * far more memory-hungry than FastTrack, it serves two purposes:
 *   1. a differential-testing oracle for FastTrackDetector (both must
 *      flag the same set of racy variables), and
 *   2. the "unoptimized continuous tool" data point in the detector
 *      microbenchmarks.
 */

#ifndef HDRD_DETECT_NAIVE_HB_HH
#define HDRD_DETECT_NAIVE_HB_HH

#include <memory>

#include "common/id_map.hh"
#include "detect/detector.hh"
#include "detect/report.hh"
#include "detect/sync_state.hh"
#include "detect/vector_clock.hh"

namespace hdrd::detect
{

/**
 * Full-vector-clock happens-before detector.
 */
class NaiveHbDetector : public Detector
{
  public:
    NaiveHbDetector(SyncClocks &clocks, ReportSink &sink,
                    std::uint32_t granule_shift = 3);

    AccessOutcome onAccess(ThreadId tid, Addr addr, bool write,
                           SiteId site) override;

    void clearShadow() override { vars_.clear(); }

    const char *name() const override { return "naive-hb"; }

    /** Number of tracked variables (tests). */
    std::size_t trackedVars() const { return vars_.size(); }

  private:
    /** Per-variable state: full read/write clocks plus last sites. */
    struct Var
    {
        VectorClock writes;
        VectorClock reads;
        SiteId w_site = kInvalidSite;
        SiteId r_site = kInvalidSite;
        bool touched = false;
    };

    SyncClocks &clocks_;
    ReportSink &sink_;
    std::uint32_t granule_shift_;
    IdMap<Var> vars_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_NAIVE_HB_HH
