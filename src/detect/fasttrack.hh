/**
 * @file
 * FastTrack-style adaptive happens-before race detector.
 *
 * This models the per-access analysis of a commercial detector such as
 * the one inside Intel Inspector XE: epochs for the common
 * thread-ordered cases, inflating the read side to a vector clock only
 * when a variable becomes read-shared.
 */

#ifndef HDRD_DETECT_FASTTRACK_HH
#define HDRD_DETECT_FASTTRACK_HH

#include "detect/detector.hh"
#include "detect/report.hh"
#include "detect/shadow.hh"
#include "detect/sync_state.hh"

namespace hdrd::detect
{

/**
 * The FastTrack algorithm over lazily materialized shadow memory.
 */
class FastTrackDetector : public Detector
{
  public:
    /**
     * @param clocks shared, always-on synchronization clocks
     * @param sink race report collector
     * @param granule_shift log2 bytes of the detection granule
     */
    FastTrackDetector(SyncClocks &clocks, ReportSink &sink,
                      std::uint32_t granule_shift = 3);

    AccessOutcome onAccess(ThreadId tid, Addr addr, bool write,
                           SiteId site) override;

    void clearShadow() override { shadow_.clear(); }

    const char *name() const override { return "fasttrack"; }

    /** The underlying shadow memory (tests). */
    const ShadowMemory &shadow() const { return shadow_; }
    ShadowMemory &shadow() { return shadow_; }

  private:
    AccessOutcome onRead(ThreadId tid, Addr addr, SiteId site);
    AccessOutcome onWrite(ThreadId tid, Addr addr, SiteId site);

    /** Did the prior state of @p st involve a thread other than tid? */
    static bool involvesOtherThread(const VarState &st, ThreadId tid);

    SyncClocks &clocks_;
    ReportSink &sink_;
    ShadowMemory shadow_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_FASTTRACK_HH
