/**
 * @file
 * FastTrack-style adaptive happens-before race detector.
 *
 * This models the per-access analysis of a commercial detector such as
 * the one inside Intel Inspector XE: epochs for the common
 * thread-ordered cases, inflating the read side to a vector clock only
 * when a variable becomes read-shared.
 */

#ifndef HDRD_DETECT_FASTTRACK_HH
#define HDRD_DETECT_FASTTRACK_HH

#include <memory>

#include "detect/detector.hh"
#include "detect/report.hh"
#include "detect/shadow.hh"
#include "detect/sync_state.hh"

namespace hdrd::detect
{

/**
 * The FastTrack algorithm over lazily materialized shadow memory.
 * Final: the simulator's hot path calls onAccess through a typed
 * pointer, which devirtualizes against a final class.
 *
 * The shadow can be owned (default) or borrowed from a long-lived
 * engine: a borrowed shadow is prepared (retired + re-aimed) on
 * construction, so repeated jobs recycle its chunk and clock storage
 * instead of rebuilding it.
 *
 * Hot/cold discipline: the per-access paths touch only the 16-byte
 * packed VarState; the report-only static sites live in the shadow's
 * cold SiteTable and are read exclusively on race reports.
 */
class FastTrackDetector final : public Detector
{
  public:
    /**
     * @param clocks shared, always-on synchronization clocks
     * @param sink race report collector
     * @param granule_shift log2 bytes of the detection granule
     */
    FastTrackDetector(SyncClocks &clocks, ReportSink &sink,
                      std::uint32_t granule_shift = 3);

    /**
     * Borrow @p shadow instead of owning one. The shadow is prepared
     * for @p granule_shift (all previous state retired, storage
     * recycled) and must outlive this detector.
     */
    FastTrackDetector(SyncClocks &clocks, ReportSink &sink,
                      ShadowMemory &shadow,
                      std::uint32_t granule_shift);

    AccessOutcome onAccess(ThreadId tid, Addr addr, bool write,
                           SiteId site) override
    {
        return onAccessTyped<true>(tid, addr, write, site);
    }

    /**
     * Non-virtual hot-path entry. @tparam kNeedSharing false lets a
     * caller that discards the outcome (the continuous regime — only
     * demand gating consumes it) skip the prior-state sharing
     * classification; race detection and reporting are unaffected.
     */
    template <bool kNeedSharing>
    AccessOutcome onAccessTyped(ThreadId tid, Addr addr, bool write,
                                SiteId site)
    {
        return write ? onWrite<kNeedSharing>(tid, addr, site)
                     : onRead<kNeedSharing>(tid, addr, site);
    }

    void clearShadow() override { shadow_->clear(); }

    const char *name() const override { return "fasttrack"; }

    /** The underlying shadow memory (tests). */
    const ShadowMemory &shadow() const { return *shadow_; }
    ShadowMemory &shadow() { return *shadow_; }

  private:
    // The per-access paths live in the header so the simulator's
    // devirtualized call site can inline the same-epoch fast paths
    // (shadow lookup + one 64-bit compare) into its hot loop.
    template <bool kNeedSharing>
    AccessOutcome onRead(ThreadId tid, Addr addr, SiteId site)
    {
        AccessOutcome outcome;
        VarState &st = shadow_->state(addr);
        const VectorClock &ct = clocks_.clock(tid);
        const ClockValue my_clock = ct.get(tid);
        const Epoch et(tid, my_clock);

        // Same-epoch fast paths. A packed epoch never has the shared
        // bit set, so one 64-bit compare covers "epoch read side and
        // it is exactly mine".
        if (st.r_bits == et.bits())
            return outcome;
        ClockPool &pool = shadow_->readClocks();
        if (st.readShared()
            && pool.at(st.rvcIndex()).get(tid) == my_clock)
            return outcome;

        if constexpr (kNeedSharing)
            outcome.inter_thread = involvesOtherThread(st, tid);

        const std::uint64_t g = shadow_->granule(addr);

        // Write-read conflict with the previous writer?
        if (!st.w.leq(ct)) {
            outcome.race = true;
            sink_.report(RaceReport{
                .addr = addr,
                .type = RaceType::kWriteRead,
                .first_tid = st.w.tid(),
                .first_site = shadow_->sites().writeSite(g),
                .second_tid = tid,
                .second_site = site,
            });
        }

        // Update the read side.
        if (st.readShared()) {
            pool.at(st.rvcIndex()).set(tid, my_clock);
        } else if (const Epoch r = st.r(); r.empty() || r.leq(ct)) {
            st.setRead(et);  // reads remain thread-ordered: stay an epoch
        } else {
            // Concurrent readers: inflate to a read vector clock,
            // recycled from the shadow's pool when one is parked.
            const std::uint32_t index = pool.acquire();
            VectorClock &rvc = pool.at(index);
            rvc.set(r.tid(), r.clock());
            rvc.set(tid, my_clock);
            st.setReadShared(index);
        }
        shadow_->sites().setReadSite(g, site);
        return outcome;
    }

    template <bool kNeedSharing>
    AccessOutcome onWrite(ThreadId tid, Addr addr, SiteId site)
    {
        AccessOutcome outcome;
        VarState &st = shadow_->state(addr);
        const VectorClock &ct = clocks_.clock(tid);
        const Epoch et(tid, ct.get(tid));

        if (st.w == et)
            return outcome;  // same-epoch write: nothing can have changed

        if constexpr (kNeedSharing)
            outcome.inter_thread = involvesOtherThread(st, tid);

        const std::uint64_t g = shadow_->granule(addr);

        // Write-write conflict with the previous writer?
        if (!st.w.leq(ct)) {
            outcome.race = true;
            sink_.report(RaceReport{
                .addr = addr,
                .type = RaceType::kWriteWrite,
                .first_tid = st.w.tid(),
                .first_site = shadow_->sites().writeSite(g),
                .second_tid = tid,
                .second_site = site,
            });
        }

        // Read-write conflict with any unordered reader?
        ClockPool &pool = shadow_->readClocks();
        if (st.readShared()) {
            const VectorClock &rvc = pool.at(st.rvcIndex());
            if (!rvc.leq(ct)) {
                outcome.race = true;
                const ThreadId reader =
                    rvc.firstGreaterExcept(ct, tid);
                sink_.report(RaceReport{
                    .addr = addr,
                    .type = RaceType::kReadWrite,
                    .first_tid = reader,
                    .first_site = shadow_->sites().readSite(g),
                    .second_tid = tid,
                    .second_site = site,
                });
            }
        } else if (const Epoch r = st.r();
                   !r.empty() && !r.leq(ct)) {
            outcome.race = true;
            sink_.report(RaceReport{
                .addr = addr,
                .type = RaceType::kReadWrite,
                .first_tid = r.tid(),
                .first_site = shadow_->sites().readSite(g),
                .second_tid = tid,
                .second_site = site,
            });
        }

        // FastTrack "write shared" collapses the read vector clock back
        // to the cheap representation; the clock parks in the pool for
        // the next inflation.
        if (st.readShared()) {
            pool.release(st.rvcIndex());
            st.setRead(Epoch());
            shadow_->sites().setReadSite(g, kInvalidSite);
        }
        st.w = et;
        shadow_->sites().setWriteSite(g, site);
        return outcome;
    }

    /** Did the prior state of @p st involve a thread other than tid? */
    bool involvesOtherThread(const VarState &st, ThreadId tid) const
    {
        if (!st.w.empty() && st.w.tid() != tid)
            return true;
        if (st.readShared()) {
            const VectorClock &rvc =
                shadow_->readClocks().at(st.rvcIndex());
            return !rvc.soleNonzero(tid);
        }
        const Epoch r = st.r();
        return !r.empty() && r.tid() != tid;
    }

    SyncClocks &clocks_;
    ReportSink &sink_;

    /** Set only when this detector owns its shadow. */
    std::unique_ptr<ShadowMemory> owned_;

    /** The shadow in use: owned_ or a caller-provided long-lived one. */
    ShadowMemory *shadow_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_FASTTRACK_HH
