/**
 * @file
 * FastTrack-style adaptive happens-before race detector.
 *
 * This models the per-access analysis of a commercial detector such as
 * the one inside Intel Inspector XE: epochs for the common
 * thread-ordered cases, inflating the read side to a vector clock only
 * when a variable becomes read-shared.
 */

#ifndef HDRD_DETECT_FASTTRACK_HH
#define HDRD_DETECT_FASTTRACK_HH

#include <memory>

#include "detect/detector.hh"
#include "detect/report.hh"
#include "detect/shadow.hh"
#include "detect/sync_state.hh"

namespace hdrd::detect
{

/**
 * The FastTrack algorithm over lazily materialized shadow memory.
 * Final: the simulator's hot path calls onAccess through a typed
 * pointer, which devirtualizes against a final class.
 *
 * The shadow can be owned (default) or borrowed from a long-lived
 * engine: a borrowed shadow is prepared (retired + re-aimed) on
 * construction, so repeated jobs recycle its chunk and clock storage
 * instead of rebuilding it.
 */
class FastTrackDetector final : public Detector
{
  public:
    /**
     * @param clocks shared, always-on synchronization clocks
     * @param sink race report collector
     * @param granule_shift log2 bytes of the detection granule
     */
    FastTrackDetector(SyncClocks &clocks, ReportSink &sink,
                      std::uint32_t granule_shift = 3);

    /**
     * Borrow @p shadow instead of owning one. The shadow is prepared
     * for @p granule_shift (all previous state retired, storage
     * recycled) and must outlive this detector.
     */
    FastTrackDetector(SyncClocks &clocks, ReportSink &sink,
                      ShadowMemory &shadow,
                      std::uint32_t granule_shift);

    AccessOutcome onAccess(ThreadId tid, Addr addr, bool write,
                           SiteId site) override
    {
        return onAccessTyped<true>(tid, addr, write, site);
    }

    /**
     * Non-virtual hot-path entry. @tparam kNeedSharing false lets a
     * caller that discards the outcome (the continuous regime — only
     * demand gating consumes it) skip the prior-state sharing
     * classification; race detection and reporting are unaffected.
     */
    template <bool kNeedSharing>
    AccessOutcome onAccessTyped(ThreadId tid, Addr addr, bool write,
                                SiteId site)
    {
        return write ? onWrite<kNeedSharing>(tid, addr, site)
                     : onRead<kNeedSharing>(tid, addr, site);
    }

    void clearShadow() override { shadow_->clear(); }

    const char *name() const override { return "fasttrack"; }

    /** The underlying shadow memory (tests). */
    const ShadowMemory &shadow() const { return *shadow_; }
    ShadowMemory &shadow() { return *shadow_; }

  private:
    // The per-access paths live in the header so the simulator's
    // devirtualized call site can inline the same-epoch fast paths
    // (shadow lookup + one 64-bit compare) into its hot loop.
    template <bool kNeedSharing>
    AccessOutcome onRead(ThreadId tid, Addr addr, SiteId site)
    {
        AccessOutcome outcome;
        VarState &st = shadow_->state(addr);
        const VectorClock &ct = clocks_.clock(tid);
        const ClockValue my_clock = ct.get(tid);
        const Epoch et(tid, my_clock);

        // Same-epoch fast paths.
        if (!st.rvc && st.r == et)
            return outcome;
        if (st.rvc && st.rvc->get(tid) == my_clock)
            return outcome;

        if constexpr (kNeedSharing)
            outcome.inter_thread = involvesOtherThread(st, tid);

        // Write-read conflict with the previous writer?
        if (!st.w.leq(ct)) {
            outcome.race = true;
            sink_.report(RaceReport{
                .addr = addr,
                .type = RaceType::kWriteRead,
                .first_tid = st.w.tid(),
                .first_site = st.w_site,
                .second_tid = tid,
                .second_site = site,
            });
        }

        // Update the read side.
        if (st.rvc) {
            st.rvc->set(tid, my_clock);
        } else if (st.r.empty() || st.r.leq(ct)) {
            st.r = et;  // reads remain thread-ordered: stay an epoch
        } else {
            // Concurrent readers: inflate to a read vector clock,
            // recycled from the shadow's pool when one is parked.
            st.rvc = shadow_->readClocks().acquire();
            st.rvc->set(st.r.tid(), st.r.clock());
            st.rvc->set(tid, my_clock);
            st.r = Epoch();
        }
        st.r_site = site;
        return outcome;
    }

    template <bool kNeedSharing>
    AccessOutcome onWrite(ThreadId tid, Addr addr, SiteId site)
    {
        AccessOutcome outcome;
        VarState &st = shadow_->state(addr);
        const VectorClock &ct = clocks_.clock(tid);
        const Epoch et(tid, ct.get(tid));

        if (st.w == et)
            return outcome;  // same-epoch write: nothing can have changed

        if constexpr (kNeedSharing)
            outcome.inter_thread = involvesOtherThread(st, tid);

        // Write-write conflict with the previous writer?
        if (!st.w.leq(ct)) {
            outcome.race = true;
            sink_.report(RaceReport{
                .addr = addr,
                .type = RaceType::kWriteWrite,
                .first_tid = st.w.tid(),
                .first_site = st.w_site,
                .second_tid = tid,
                .second_site = site,
            });
        }

        // Read-write conflict with any unordered reader?
        if (st.rvc) {
            if (!st.rvc->leq(ct)) {
                outcome.race = true;
                const ThreadId reader =
                    st.rvc->firstGreaterExcept(ct, tid);
                sink_.report(RaceReport{
                    .addr = addr,
                    .type = RaceType::kReadWrite,
                    .first_tid = reader,
                    .first_site = st.r_site,
                    .second_tid = tid,
                    .second_site = site,
                });
            }
        } else if (!st.r.empty() && !st.r.leq(ct)) {
            outcome.race = true;
            sink_.report(RaceReport{
                .addr = addr,
                .type = RaceType::kReadWrite,
                .first_tid = st.r.tid(),
                .first_site = st.r_site,
                .second_tid = tid,
                .second_site = site,
            });
        }

        // FastTrack "write shared" collapses the read vector clock back
        // to the cheap representation; the clock parks in the pool for
        // the next inflation.
        if (st.rvc) {
            shadow_->readClocks().release(st.rvc);
            st.rvc = nullptr;
            st.r = Epoch();
            st.r_site = kInvalidSite;
        }
        st.w = et;
        st.w_site = site;
        return outcome;
    }

    /** Did the prior state of @p st involve a thread other than tid? */
    static bool involvesOtherThread(const VarState &st, ThreadId tid)
    {
        if (!st.w.empty() && st.w.tid() != tid)
            return true;
        if (st.rvc)
            return !st.rvc->soleNonzero(tid);
        return !st.r.empty() && st.r.tid() != tid;
    }

    SyncClocks &clocks_;
    ReportSink &sink_;

    /** Set only when this detector owns its shadow. */
    std::unique_ptr<ShadowMemory> owned_;

    /** The shadow in use: owned_ or a caller-provided long-lived one. */
    ShadowMemory *shadow_;
};

} // namespace hdrd::detect

#endif // HDRD_DETECT_FASTTRACK_HH
