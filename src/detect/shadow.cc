#include "detect/shadow.hh"

#include "common/logging.hh"

namespace hdrd::detect
{

ShadowMemory::ShadowMemory(std::uint32_t granule_shift)
    : granule_shift_(granule_shift)
{
    hdrdAssert(granule_shift <= 12,
               "unreasonable shadow granule shift ", granule_shift);
}

VarState &
ShadowMemory::state(Addr addr)
{
    const std::uint64_t g = granule(addr);
    const std::uint64_t chunk_idx = g / kChunkGranules;
    auto &chunk = chunks_[chunk_idx];
    if (!chunk)
        chunk = std::make_unique<Chunk>();
    return (*chunk)[g % kChunkGranules];
}

const VarState *
ShadowMemory::peek(Addr addr) const
{
    const std::uint64_t g = granule(addr);
    auto it = chunks_.find(g / kChunkGranules);
    if (it == chunks_.end())
        return nullptr;
    return &(*it->second)[g % kChunkGranules];
}

void
ShadowMemory::clear()
{
    chunks_.clear();
}

} // namespace hdrd::detect
