#include "detect/shadow.hh"

#include "common/logging.hh"

namespace hdrd::detect
{

ShadowMemory::ShadowMemory(std::uint32_t granule_shift)
    : granule_shift_(granule_shift)
{
    hdrdAssert(granule_shift <= 12,
               "unreasonable shadow granule shift ", granule_shift);
}

} // namespace hdrd::detect
