#include "detect/shadow.hh"

#include "common/logging.hh"

namespace hdrd::detect
{

namespace
{

void
checkShift(std::uint32_t granule_shift)
{
    hdrdAssert(granule_shift <= 12,
               "unreasonable shadow granule shift ", granule_shift);
}

} // namespace

ShadowMemory::ShadowMemory(std::uint32_t granule_shift)
    : granule_shift_(granule_shift)
{
    checkShift(granule_shift);
}

void
ShadowMemory::prepare(std::uint32_t granule_shift)
{
    checkShift(granule_shift);
    granule_shift_ = granule_shift;
    clear();
}

} // namespace hdrd::detect
