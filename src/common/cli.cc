#include "common/cli.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace hdrd::cli
{

std::uint64_t
parseU64(const std::string &flag, const std::string &text,
         std::uint64_t lo, std::uint64_t hi)
{
    if (text.empty() || text.find('-') != std::string::npos)
        fatal("--", flag, ": expected an unsigned integer, got '",
              text, "'");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || errno == ERANGE)
        fatal("--", flag, ": expected an unsigned integer, got '",
              text, "'");
    if (*end != '\0') {
        // One binary size suffix (k/m/g, either case), nothing after.
        std::uint64_t mult = 0;
        switch (*end) {
          case 'k': case 'K': mult = 1ULL << 10; break;
          case 'm': case 'M': mult = 1ULL << 20; break;
          case 'g': case 'G': mult = 1ULL << 30; break;
        }
        if (mult == 0 || end[1] != '\0')
            fatal("--", flag, ": expected an unsigned integer "
                  "(optionally suffixed k/m/g), got '", text, "'");
        if (v > UINT64_MAX / mult)
            fatal("--", flag, ": value '", text,
                  "' overflows 64 bits");
        v *= mult;
    }
    if (v < lo || v > hi)
        fatal("--", flag, ": value ", v, " out of range [", lo, ", ",
              hi, "]");
    return v;
}

std::uint32_t
parseU32(const std::string &flag, const std::string &text,
         std::uint32_t lo, std::uint32_t hi)
{
    return static_cast<std::uint32_t>(parseU64(flag, text, lo, hi));
}

double
parseDouble(const std::string &flag, const std::string &text,
            double lo, double hi)
{
    if (text.empty())
        fatal("--", flag, ": expected a number, got ''");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || std::isnan(v)
        || errno == ERANGE) {
        fatal("--", flag, ": expected a number, got '", text, "'");
    }
    if (v < lo || v > hi)
        fatal("--", flag, ": value ", v, " out of range [", lo, ", ",
              hi, "]");
    return v;
}

} // namespace hdrd::cli
