/**
 * @file
 * Thread-local allocation counters and peak-RSS reporting for the
 * benchmark tools.
 *
 * The memory round's whole point is taking the allocator out of the
 * detector's steady state, so the benchmark must be able to see
 * allocator traffic. Counting happens in an *interposer* translation
 * unit (tools/alloc_interpose.cc) that overrides global operator
 * new/delete and is linked only into binaries that want it; the
 * library carries weak no-op fallbacks, so ordinary builds pay
 * nothing and report the counters as untracked.
 */

#ifndef HDRD_COMMON_ALLOC_STATS_HH
#define HDRD_COMMON_ALLOC_STATS_HH

#include <cstdint>

namespace hdrd
{

/** Allocation totals for one thread since it started. */
struct AllocCounters
{
    /** Calls into operator new (all flavours). */
    std::uint64_t count = 0;

    /** Sum of requested sizes, in bytes. */
    std::uint64_t bytes = 0;
};

/**
 * Snapshot of the calling thread's allocation counters. All-zero
 * (and meaningless) unless allocTrackingActive().
 */
AllocCounters threadAllocCounters();

/**
 * Exact process-wide allocation totals: the sum over every thread
 * that ever allocated, live or exited. Each thread counts into its
 * own cache line with no atomics; exited threads fold their totals
 * into a retired accumulator on the way out. The sum is exact
 * whenever allocating threads are quiescent (joined, or between ops
 * in a single-worker bench), which is the only time the bench reads
 * it. All-zero unless allocTrackingActive().
 */
AllocCounters processAllocCounters();

/** True when the interposer TU is linked in and counting. */
bool allocTrackingActive();

/**
 * Process peak resident set size in KiB: VmHWM from
 * /proc/self/status when available (resettable), getrusage
 * otherwise, 0 if unknown.
 */
std::uint64_t peakRssKb();

/**
 * Reset the kernel's peak-RSS watermark (write "5" to
 * /proc/self/clear_refs) so peakRssKb() measures the high-water mark
 * of just the work that follows. @return false when unsupported.
 */
bool resetPeakRss();

} // namespace hdrd

#endif // HDRD_COMMON_ALLOC_STATS_HH
