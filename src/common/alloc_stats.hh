/**
 * @file
 * Thread-local allocation counters and peak-RSS reporting for the
 * benchmark tools.
 *
 * The memory round's whole point is taking the allocator out of the
 * detector's steady state, so the benchmark must be able to see
 * allocator traffic. Counting happens in an *interposer* translation
 * unit (tools/alloc_interpose.cc) that overrides global operator
 * new/delete and is linked only into binaries that want it; the
 * library carries weak no-op fallbacks, so ordinary builds pay
 * nothing and report the counters as untracked.
 */

#ifndef HDRD_COMMON_ALLOC_STATS_HH
#define HDRD_COMMON_ALLOC_STATS_HH

#include <cstdint>

namespace hdrd
{

/** Allocation totals for one thread since it started. */
struct AllocCounters
{
    /** Calls into operator new (all flavours). */
    std::uint64_t count = 0;

    /** Sum of requested sizes, in bytes. */
    std::uint64_t bytes = 0;
};

/**
 * Snapshot of the calling thread's allocation counters. All-zero
 * (and meaningless) unless allocTrackingActive().
 */
AllocCounters threadAllocCounters();

/** True when the interposer TU is linked in and counting. */
bool allocTrackingActive();

/** Process peak resident set size in KiB (getrusage), 0 if unknown. */
std::uint64_t peakRssKb();

} // namespace hdrd

#endif // HDRD_COMMON_ALLOC_STATS_HH
