/**
 * @file
 * Fixed-bucket and log2 histograms for simulator statistics.
 */

#ifndef HDRD_COMMON_HISTOGRAM_HH
#define HDRD_COMMON_HISTOGRAM_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <ostream>
#include <vector>

namespace hdrd
{

/**
 * Power-of-two-bucketed histogram of non-negative samples.
 *
 * Bucket i counts samples in [2^(i-1), 2^i), with bucket 0 reserved
 * for the value 0. Suits latency/burst-length distributions whose
 * interesting structure spans several orders of magnitude.
 */
class Log2Histogram
{
  public:
    /** Record one sample. */
    void add(std::uint64_t value)
    {
        const std::size_t idx = bucketIndex(value);
        if (idx >= buckets_.size())
            buckets_.resize(idx + 1, 0);
        ++buckets_[idx];
        ++count_;
        sum_ += value;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Count in log2 bucket @p i (0 when beyond populated range). */
    std::uint64_t bucket(std::size_t i) const;

    /** Number of populated buckets. */
    std::size_t buckets() const { return buckets_.size(); }

    /** Smallest sample seen; 0 when empty. */
    std::uint64_t min() const { return count_ ? min_ : 0; }

    /** Largest sample seen; 0 when empty. */
    std::uint64_t max() const { return max_; }

    /**
     * Approximate p-th percentile (p in [0,100]) assuming uniform
     * spread within buckets. Exact for the 0-bucket.
     */
    double percentile(double p) const;

    /** Reset to empty. */
    void reset();

    /** Human-readable dump: one "[lo,hi) count" line per bucket. */
    void dump(std::ostream &os, const char *label = "") const;

  private:
    /** Bucket index: 0 for value 0, else 1 + floor(log2(value)). */
    static std::size_t bucketIndex(std::uint64_t value)
    {
        if (value == 0)
            return 0;
        return static_cast<std::size_t>(std::bit_width(value));
    }

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

} // namespace hdrd

#endif // HDRD_COMMON_HISTOGRAM_HH
