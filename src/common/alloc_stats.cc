#include "common/alloc_stats.hh"

#include <sys/resource.h>

namespace hdrd
{

// Weak no-op fallbacks: the interposer TU (tools/alloc_interpose.cc)
// provides strong definitions when linked into a binary directly,
// and strong object-file symbols beat weak archive members.
__attribute__((weak)) AllocCounters
threadAllocCounters()
{
    return {};
}

__attribute__((weak)) bool
allocTrackingActive()
{
    return false;
}

std::uint64_t
peakRssKb()
{
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in KiB already.
    return static_cast<std::uint64_t>(ru.ru_maxrss);
}

} // namespace hdrd
