#include "common/alloc_stats.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <sys/resource.h>

namespace hdrd
{

// Weak no-op fallbacks: the interposer TU (tools/alloc_interpose.cc)
// provides strong definitions when linked into a binary directly,
// and strong object-file symbols beat weak archive members.
__attribute__((weak)) AllocCounters
threadAllocCounters()
{
    return {};
}

__attribute__((weak)) AllocCounters
processAllocCounters()
{
    return {};
}

__attribute__((weak)) bool
allocTrackingActive()
{
    return false;
}

std::uint64_t
peakRssKb()
{
    // VmHWM tracks the same high-water mark getrusage reports but
    // resets with /proc/self/clear_refs, which is what lets the
    // bench attribute a peak to one cell instead of the whole run.
    if (std::FILE *f = std::fopen("/proc/self/status", "r")) {
        char line[256];
        while (std::fgets(line, sizeof line, f) != nullptr) {
            if (std::strncmp(line, "VmHWM:", 6) == 0) {
                std::fclose(f);
                return std::strtoull(line + 6, nullptr, 10);
            }
        }
        std::fclose(f);
    }
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in KiB already.
    return static_cast<std::uint64_t>(ru.ru_maxrss);
}

bool
resetPeakRss()
{
    std::FILE *f = std::fopen("/proc/self/clear_refs", "w");
    if (f == nullptr)
        return false;
    const bool wrote = std::fputs("5", f) >= 0;
    return std::fclose(f) == 0 && wrote;
}

} // namespace hdrd
