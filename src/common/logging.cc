#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace hdrd
{
namespace log_detail
{

namespace
{
bool inform_enabled = true;
} // namespace

void
setInformEnabled(bool enabled)
{
    inform_enabled = enabled;
}

bool
informEnabled()
{
    return inform_enabled;
}

void
informImpl(const std::string &msg)
{
    if (inform_enabled)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panicImpl(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace log_detail
} // namespace hdrd
