/**
 * @file
 * Machine-readable benchmark output: the BENCH_engine.json schema.
 *
 * One schema ("hdrd-bench-v2") shared by every producer of host-side
 * performance numbers — tools/hdrd_bench (the full workload x mode
 * sweep) and hdrd_sim --bench-json (a single run) — so the perf
 * trajectory across PRs is one homogeneous series of files.
 *
 * v2 extends v1 with memory columns (per-cell allocator traffic when
 * the interposer is linked, process peak RSS, and the active SIMD
 * level); every v1 field is unchanged, so v1 consumers keep working
 * on v2 files that they read leniently.
 */

#ifndef HDRD_COMMON_BENCH_JSON_HH
#define HDRD_COMMON_BENCH_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hdrd::benchjson
{

/** One timed simulation: a (workload, mode) cell of the sweep. */
struct BenchCell
{
    std::string workload;  ///< registry name, e.g. "phoenix.histogram"
    std::string suite;     ///< registry suite, e.g. "phoenix"
    std::string mode;      ///< "native" | "continuous" | "demand-hitm"
    std::string detector;  ///< e.g. "fasttrack"

    /** Best host wall time over the repeat loop, in seconds. */
    double wall_seconds = 0.0;

    /** Simulated operations executed (RunResult::total_ops). */
    std::uint64_t sim_ops = 0;

    /** Simulated data accesses (RunResult::mem_accesses). */
    std::uint64_t sim_mem_accesses = 0;

    /** Simulated wall cycles (RunResult::wall_cycles). */
    std::uint64_t sim_wall_cycles = 0;

    /** Unique race reports. */
    std::uint64_t races_unique = 0;

    /** sim_ops / wall_seconds. */
    double host_ops_per_sec = 0.0;

    /** Was this cell re-run and compared for determinism? */
    bool checked = false;

    /** Dump output was byte-identical across the check re-run. */
    bool deterministic = true;

    /**
     * Allocator traffic while timing this cell (v2): operator-new
     * calls and requested bytes on the running thread. Zero when the
     * producing binary lacks the interposer (meta.alloc_tracked).
     */
    std::uint64_t alloc_count = 0;
    std::uint64_t alloc_bytes = 0;

    /** v2: workload scale this cell ran at (large-tier sweeps mix
     *  scales in one file; 0 = the sweep default in meta). */
    double scale = 0.0;

    /**
     * v2: peak RSS attributed to this cell in KiB, measured by
     * resetting the kernel watermark before the timed repeats and
     * reading VmHWM after. Meaningful only with workers == 1 (the
     * large tier forces that); 0 = not measured.
     */
    std::uint64_t peak_rss_kb = 0;
};

/** Sweep-level configuration recorded alongside the cells. */
struct BenchMeta
{
    std::string tool;  ///< producing binary, e.g. "hdrd_bench"
    double scale = 0.5;
    std::uint64_t seed = 1;
    std::uint32_t threads = 4;
    std::uint32_t cores = 4;
    std::uint32_t workers = 1;
    std::uint32_t repeat = 1;
    bool smoke = false;

    /**
     * Pre-change reference: aggregate continuous-FastTrack host
     * ops/sec of the engine being compared against (0 = not given).
     * Recorded so a single BENCH_engine.json documents both sides of
     * a perf PR.
     */
    double baseline_continuous_ft_ops = 0.0;

    /** v2: process peak resident set size at write time, in KiB. */
    std::uint64_t peak_rss_kb = 0;

    /** v2: were the per-cell alloc columns actually counted? */
    bool alloc_tracked = false;

    /** v2: active clock-kernel flavour ("scalar"|"sse42"|"avx2"). */
    std::string simd_level;

    /** v2: bench tier that produced the cells ("default"|"large"). */
    std::string tier = "default";

    /** v2: host stamp (uname node/machine), for trajectory hygiene —
     *  cells from different hosts must not be compared silently. */
    std::string host;

    /** v2: build stamp (compiler + flags flavour), same reason. */
    std::string build;
};

/**
 * Aggregate throughput of the continuous-FastTrack cells: the
 * headline engine-speed number (sum of sim_ops / sum of wall time).
 */
double continuousFtOpsPerSec(const std::vector<BenchCell> &cells);

/** Serialize meta + cells + computed summary as hdrd-bench-v1 JSON. */
void writeBenchJson(std::ostream &os, const BenchMeta &meta,
                    const std::vector<BenchCell> &cells);

} // namespace hdrd::benchjson

#endif // HDRD_COMMON_BENCH_JSON_HH
