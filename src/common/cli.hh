/**
 * @file
 * Shared command-line parsing helpers for the hdrd tools.
 *
 * Every numeric flag in hdrd_sim/hdrd_bench/hdrd_fuzz funnels through
 * these: a malformed or out-of-range value names the offending flag
 * and exits nonzero (fatal) instead of throwing an uncaught
 * std::invalid_argument out of std::stoul or silently truncating.
 */

#ifndef HDRD_COMMON_CLI_HH
#define HDRD_COMMON_CLI_HH

#include <cstdint>
#include <string>

namespace hdrd::cli
{

/**
 * Parse the value of --<flag>=<text> as an unsigned integer in
 * [@p lo, @p hi]. fatal()s (exit 1) with the flag name on malformed
 * input, a negative sign, trailing junk, or range violation.
 *
 * Byte/count flags accept a single binary size suffix: `k`/`K`
 * (x1024), `m`/`M` (x1024^2), `g`/`G` (x1024^3) — so
 * `--queue=4k` means 4096. Multiplication overflow and any other
 * trailing character (e.g. `10kb`, `5x`) are rejected.
 */
std::uint64_t parseU64(const std::string &flag, const std::string &text,
                       std::uint64_t lo = 0,
                       std::uint64_t hi = UINT64_MAX);

/** parseU64 narrowed to 32 bits. */
std::uint32_t parseU32(const std::string &flag, const std::string &text,
                       std::uint32_t lo = 0,
                       std::uint32_t hi = UINT32_MAX);

/**
 * Parse the value of --<flag>=<text> as a double in [@p lo, @p hi].
 * fatal()s with the flag name on malformed input, NaN, trailing junk,
 * or range violation.
 */
double parseDouble(const std::string &flag, const std::string &text,
                   double lo, double hi);

} // namespace hdrd::cli

#endif // HDRD_COMMON_CLI_HH
