/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Everything random in hdrd flows through Rng so that a (seed, program)
 * pair fully determines an experiment. The generator is xoshiro256**,
 * which is tiny, fast, and has far better statistical behaviour than
 * std::minstd/rand while staying reproducible across platforms (unlike
 * std::default_random_engine, whose meaning is implementation-defined).
 */

#ifndef HDRD_COMMON_RNG_HH
#define HDRD_COMMON_RNG_HH

#include <cstdint>

namespace hdrd
{

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Not a std::uniform_random_bit_generator on purpose: the std
 * distributions are implementation-defined, so we provide our own
 * portable helpers instead.
 */
class Rng
{
  public:
    /** Seed deterministically via SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool nextBool(double p);

    /**
     * Geometric-ish burst length: 1 + number of successes before the
     * first failure with continue-probability @p p. Used by workload
     * models for bursty sharing phases.
     */
    std::uint64_t nextBurst(double p, std::uint64_t cap = 1 << 20);

    /** Split off an independent generator (jump via reseed). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace hdrd

#endif // HDRD_COMMON_RNG_HH
