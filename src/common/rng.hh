/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Everything random in hdrd flows through Rng so that a (seed, program)
 * pair fully determines an experiment. The generator is xoshiro256**,
 * which is tiny, fast, and has far better statistical behaviour than
 * std::minstd/rand while staying reproducible across platforms (unlike
 * std::default_random_engine, whose meaning is implementation-defined).
 */

#ifndef HDRD_COMMON_RNG_HH
#define HDRD_COMMON_RNG_HH

#include <cstdint>

namespace hdrd
{

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Not a std::uniform_random_bit_generator on purpose: the std
 * distributions are implementation-defined, so we provide our own
 * portable helpers instead.
 */
class Rng
{
  public:
    /** Seed deterministically via SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /**
     * Next raw 64-bit value. In the header (with the other per-op
     * draws below) so workload op generation inlines it: one draw per
     * synthetic access makes the call overhead measurable.
     */
    std::uint64_t next64()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound)
    {
        // Power-of-two bound: rejection never triggers (threshold is
        // zero) and the modulo is a mask, so the general path below
        // would return exactly this from its first draw — same
        // value, two integer divisions cheaper.
        if ((bound & (bound - 1)) == 0 && bound != 0)
            return next64() & (bound - 1);
        return nextBoundedSlow(bound);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        // 53 high bits -> uniform double in [0, 1).
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool nextBool(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /**
     * Geometric-ish burst length: 1 + number of successes before the
     * first failure with continue-probability @p p. Used by workload
     * models for bursty sharing phases.
     */
    std::uint64_t nextBurst(double p, std::uint64_t cap = 1 << 20);

    /** Split off an independent generator (jump via reseed). */
    Rng split();

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Rejection-sampling path for non-power-of-two bounds. */
    std::uint64_t nextBoundedSlow(std::uint64_t bound);

    std::uint64_t s_[4];
};

} // namespace hdrd

#endif // HDRD_COMMON_RNG_HH
