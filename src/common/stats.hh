/**
 * @file
 * A small named-statistics registry.
 *
 * Modules register counters and scalars against a StatGroup; the
 * benches and examples dump groups in a stable, diff-friendly text
 * format. This is deliberately much simpler than gem5's stats package:
 * plain counters, scalars, and formulas evaluated at dump time.
 */

#ifndef HDRD_COMMON_STATS_HH
#define HDRD_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>

namespace hdrd
{

/**
 * A group of named statistics.
 *
 * Counters are owned by the group and addressed by name; formula
 * entries are evaluated lazily when the group is dumped so ratios stay
 * consistent with their inputs.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Group name (used as the dump prefix). */
    const std::string &name() const { return name_; }

    /** Add @p delta to the counter @p stat, creating it at zero. */
    void inc(const std::string &stat, std::uint64_t delta = 1);

    /**
     * Stable pointer to the counter @p stat's cell, creating it at
     * zero. Hot paths fetch the cell once and bump through it,
     * skipping the per-event name lookup. Invalidated by reset().
     */
    std::uint64_t *counterCell(const std::string &stat);

    /** Set the scalar @p stat to @p value, creating it if needed. */
    void set(const std::string &stat, double value);

    /** Current counter value (0 if never touched). */
    std::uint64_t counter(const std::string &stat) const;

    /** Current scalar value (0.0 if never touched). */
    double scalar(const std::string &stat) const;

    /**
     * Register a formula evaluated at dump() time.
     * @param stat name of the derived statistic
     * @param fn callable producing the value from this group
     */
    void formula(const std::string &stat,
                 std::function<double(const StatGroup &)> fn);

    /** Reset all counters and scalars to zero; formulas persist. */
    void reset();

    /** Write "group.stat value" lines, sorted by stat name. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> scalars_;
    std::map<std::string, std::function<double(const StatGroup &)>>
        formulas_;
};

} // namespace hdrd

#endif // HDRD_COMMON_STATS_HH
