#include "common/bench_json.hh"

#include <iomanip>
#include <map>

namespace hdrd::benchjson
{

namespace
{

/** Minimal JSON string escaping (names here are plain identifiers). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

struct ModeAgg
{
    double wall = 0.0;
    std::uint64_t ops = 0;
};

} // namespace

double
continuousFtOpsPerSec(const std::vector<BenchCell> &cells)
{
    double wall = 0.0;
    std::uint64_t ops = 0;
    for (const BenchCell &c : cells) {
        if (c.mode == "continuous" && c.detector == "fasttrack") {
            wall += c.wall_seconds;
            ops += c.sim_ops;
        }
    }
    return wall > 0.0 ? static_cast<double>(ops) / wall : 0.0;
}

void
writeBenchJson(std::ostream &os, const BenchMeta &meta,
               const std::vector<BenchCell> &cells)
{
    os << std::setprecision(12);
    os << "{\n"
       << "  \"schema\": \"hdrd-bench-v2\",\n"
       << "  \"tool\": \"" << escape(meta.tool) << "\",\n"
       << "  \"config\": {\n"
       << "    \"scale\": " << meta.scale << ",\n"
       << "    \"seed\": " << meta.seed << ",\n"
       << "    \"threads\": " << meta.threads << ",\n"
       << "    \"cores\": " << meta.cores << ",\n"
       << "    \"workers\": " << meta.workers << ",\n"
       << "    \"repeat\": " << meta.repeat << ",\n"
       << "    \"smoke\": " << (meta.smoke ? "true" : "false") << ",\n"
       << "    \"tier\": \"" << escape(meta.tier) << "\",\n"
       << "    \"host\": \"" << escape(meta.host) << "\",\n"
       << "    \"build\": \"" << escape(meta.build) << "\",\n"
       << "    \"simd_level\": \"" << escape(meta.simd_level)
       << "\",\n"
       << "    \"alloc_tracked\": "
       << (meta.alloc_tracked ? "true" : "false") << "\n"
       << "  },\n";

    if (meta.baseline_continuous_ft_ops > 0.0) {
        os << "  \"baseline\": {\n"
           << "    \"continuous_fasttrack_ops_per_sec\": "
           << meta.baseline_continuous_ft_ops << "\n"
           << "  },\n";
    }

    os << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const BenchCell &c = cells[i];
        os << "    {\"workload\": \"" << escape(c.workload)
           << "\", \"suite\": \"" << escape(c.suite)
           << "\", \"mode\": \"" << escape(c.mode)
           << "\", \"detector\": \"" << escape(c.detector)
           << "\", \"wall_seconds\": " << c.wall_seconds
           << ", \"sim_ops\": " << c.sim_ops
           << ", \"sim_mem_accesses\": " << c.sim_mem_accesses
           << ", \"sim_wall_cycles\": " << c.sim_wall_cycles
           << ", \"races_unique\": " << c.races_unique
           << ", \"host_ops_per_sec\": " << c.host_ops_per_sec
           << ", \"alloc_count\": " << c.alloc_count
           << ", \"alloc_bytes\": " << c.alloc_bytes
           << ", \"scale\": " << c.scale
           << ", \"peak_rss_kb\": " << c.peak_rss_kb
           << ", \"checked\": " << (c.checked ? "true" : "false")
           << ", \"deterministic\": "
           << (c.deterministic ? "true" : "false") << "}"
           << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    double total_wall = 0.0;
    std::uint64_t total_ops = 0;
    std::uint64_t total_allocs = 0;
    std::uint64_t total_alloc_bytes = 0;
    std::map<std::string, ModeAgg> by_mode;
    bool all_deterministic = true;
    for (const BenchCell &c : cells) {
        total_wall += c.wall_seconds;
        total_ops += c.sim_ops;
        total_allocs += c.alloc_count;
        total_alloc_bytes += c.alloc_bytes;
        by_mode[c.mode].wall += c.wall_seconds;
        by_mode[c.mode].ops += c.sim_ops;
        all_deterministic = all_deterministic && c.deterministic;
    }
    const double cont_ft = continuousFtOpsPerSec(cells);

    os << "  \"summary\": {\n"
       << "    \"cells\": " << cells.size() << ",\n"
       << "    \"total_wall_seconds\": " << total_wall << ",\n"
       << "    \"total_sim_ops\": " << total_ops << ",\n"
       << "    \"total_alloc_count\": " << total_allocs << ",\n"
       << "    \"total_alloc_bytes\": " << total_alloc_bytes << ",\n"
       << "    \"peak_rss_kb\": " << meta.peak_rss_kb << ",\n"
       << "    \"aggregate_host_ops_per_sec\": "
       << (total_wall > 0.0
               ? static_cast<double>(total_ops) / total_wall
               : 0.0)
       << ",\n"
       << "    \"per_mode_ops_per_sec\": {";
    bool first = true;
    for (const auto &[mode, agg] : by_mode) {
        os << (first ? "" : ", ") << "\"" << escape(mode) << "\": "
           << (agg.wall > 0.0
                   ? static_cast<double>(agg.ops) / agg.wall
                   : 0.0);
        first = false;
    }
    os << "},\n"
       << "    \"continuous_fasttrack_ops_per_sec\": " << cont_ft
       << ",\n";
    if (meta.baseline_continuous_ft_ops > 0.0) {
        os << "    \"speedup_vs_baseline\": "
           << cont_ft / meta.baseline_continuous_ft_ops << ",\n";
    }
    os << "    \"all_deterministic\": "
       << (all_deterministic ? "true" : "false") << "\n"
       << "  }\n"
       << "}\n";
}

} // namespace hdrd::benchjson
