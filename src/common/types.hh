/**
 * @file
 * Fundamental type aliases shared by every hdrd module.
 *
 * Keeping the aliases in one tiny header documents intent at use sites
 * (an Addr is not a Cycle is not a ThreadId) without the cost of strong
 * wrapper types on the simulator's hottest paths.
 */

#ifndef HDRD_COMMON_TYPES_HH
#define HDRD_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace hdrd
{

/** Byte address in the simulated flat physical address space. */
using Addr = std::uint64_t;

/** Simulated processor cycles. */
using Cycle = std::uint64_t;

/** Simulated thread identifier (dense, 0-based). */
using ThreadId = std::uint32_t;

/** Physical core identifier (dense, 0-based). */
using CoreId = std::uint32_t;

/**
 * Static program-site identifier.
 *
 * Workload operations carry a SiteId naming the static source location
 * the operation models; race reports are deduplicated on unordered
 * SiteId pairs, mirroring how real detectors report unique races per
 * instruction pair rather than per dynamic occurrence.
 */
using SiteId = std::uint32_t;

/** Sentinel for "no thread". */
constexpr ThreadId kInvalidThread =
    std::numeric_limits<ThreadId>::max();

/** Sentinel for "no site". */
constexpr SiteId kInvalidSite = std::numeric_limits<SiteId>::max();

/** Sentinel address used by non-memory operations. */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

} // namespace hdrd

#endif // HDRD_COMMON_TYPES_HH
