/**
 * @file
 * Minimal status/error reporting helpers in the gem5 tradition.
 *
 * Severity ladder:
 *  - inform(): normal operating status, no connotation of error.
 *  - warn():   something is off but the run can continue sensibly.
 *  - fatal():  the run cannot continue due to a user-level problem
 *              (bad configuration, impossible parameters). Exits 1.
 *  - panic():  an internal invariant was violated — an hdrd bug.
 *              Aborts so debuggers/core dumps catch it.
 */

#ifndef HDRD_COMMON_LOGGING_HH
#define HDRD_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace hdrd
{

namespace log_detail
{

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void fatalImpl(const std::string &msg);
[[noreturn]] void panicImpl(const std::string &msg);
void informImpl(const std::string &msg);
void warnImpl(const std::string &msg);

/** Enable/disable inform() output (tests silence it). */
void setInformEnabled(bool enabled);
bool informEnabled();

} // namespace log_detail

/** Print an informational status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    log_detail::informImpl(
        log_detail::concat(std::forward<Args>(args)...));
}

/** Print a warning about questionable-but-survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    log_detail::warnImpl(
        log_detail::concat(std::forward<Args>(args)...));
}

/** Terminate the process: unrecoverable user-level error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    log_detail::fatalImpl(
        log_detail::concat(std::forward<Args>(args)...));
}

/** Abort the process: internal invariant violated (an hdrd bug). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    log_detail::panicImpl(
        log_detail::concat(std::forward<Args>(args)...));
}

/**
 * Assert an internal invariant; panics with the provided message when
 * the condition is false. Always evaluated (not compiled out): the
 * simulator's correctness claims rest on these checks.
 */
template <typename... Args>
void
hdrdAssert(bool condition, Args &&...args)
{
    if (!condition)
        panic(std::forward<Args>(args)...);
}

} // namespace hdrd

#endif // HDRD_COMMON_LOGGING_HH
