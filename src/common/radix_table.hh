/**
 * @file
 * Two-level radix page table: a flat, lazily grown directory of
 * fixed-size pages, indexed by a single shift/mask on the key.
 *
 * This is the hot-path replacement for unordered_map keyed by dense
 * 64-bit ids (shadow granules, ground-truth granules). A lookup is
 * one shift, one bounds check, and two dereferences — no hashing, no
 * bucket chains — and the most recently touched page is memoized so
 * the streaming case (consecutive granules on one page) resolves in
 * a compare and an index.
 *
 * Keys far beyond the directory ceiling (sparse, huge addresses)
 * spill to a small overflow hash map so the table stays correct for
 * the full 64-bit key space without the directory ballooning.
 *
 * Pages are bump-allocated from contiguous arena chunks rather than
 * individually heap-allocated: pages touched close in time land close
 * in memory, so a working set of N pages spans ~N/16 allocator
 * objects and far fewer TLB entries than N scattered mallocs. Pages
 * never move or free until clear(), so references returned by get()
 * stay valid across later inserts.
 *
 * Two reset flavours exist. clear() frees everything. reset() is the
 * recycling path for engine reuse across jobs: it bumps a generation
 * counter so every page becomes logically absent in O(1), and a stale
 * page is revived (slots re-value-initialized, no allocation) only
 * when next touched. Long-lived engines thus stop paying a full
 * free/malloc/zero sweep between runs while observable behaviour
 * matches a cleared table.
 */

#ifndef HDRD_COMMON_RADIX_TABLE_HH
#define HDRD_COMMON_RADIX_TABLE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace hdrd
{

/**
 * @tparam T          value type; value-initialized on first touch.
 * @tparam kPageBits  log2 of entries per page.
 * @tparam kMaxDirBits log2 of the directory ceiling, in pages; keys
 *         whose page index exceeds it live in the overflow map.
 */
template <typename T, std::uint32_t kPageBits = 9,
          std::uint32_t kMaxDirBits = 20>
class RadixTable
{
  public:
    static constexpr std::uint64_t kPageSize = std::uint64_t{1}
        << kPageBits;
    static constexpr std::uint64_t kPageMask = kPageSize - 1;
    static constexpr std::uint64_t kMaxDirPages = std::uint64_t{1}
        << kMaxDirBits;

    /** Slot for @p key, materializing its page on first touch. */
    T &get(std::uint64_t key)
    {
        const std::uint64_t p = key >> kPageBits;
        if (p == last_idx_)
            return last_page_->slots[key & kPageMask];
        Page *page = materialize(p);
        last_idx_ = p;
        last_page_ = page;
        return page->slots[key & kPageMask];
    }

    /** Slot for @p key if its page exists, else null. Never allocates. */
    const T *peek(std::uint64_t key) const
    {
        const std::uint64_t p = key >> kPageBits;
        if (p == last_idx_)
            return &last_page_->slots[key & kPageMask];
        const Page *page = nullptr;
        if (p < kMaxDirPages) {
            if (p < dir_.size())
                page = dir_[p];
        } else {
            const auto it = overflow_.find(p);
            if (it != overflow_.end())
                page = it->second;
        }
        if (page == nullptr || page->gen != gen_)
            return nullptr;
        return &page->slots[key & kPageMask];
    }

    /** Number of live (current-generation) pages. */
    std::size_t pages() const { return npages_; }

    /** Pages held in storage, live or awaiting recycling. */
    std::size_t allocatedPages() const { return allocated_; }

    /** Stale pages revived in place instead of reallocated. */
    std::uint64_t recycledPages() const { return recycled_; }

    /** Drop every page (full reset, storage freed). */
    void clear()
    {
        dir_.clear();
        overflow_.clear();
        arena_.clear();
        arena_used_ = kArenaChunkPages;
        npages_ = 0;
        allocated_ = 0;
        last_idx_ = kNoPage;
        last_page_ = nullptr;
    }

    /**
     * Logically empty the table in O(1), keeping page storage for
     * recycling. Afterwards pages() is 0 and peek() misses everywhere,
     * exactly as after clear(); the next get() of an old key revives
     * its page by re-initializing the slots in place.
     */
    void reset()
    {
        ++gen_;
        npages_ = 0;
        last_idx_ = kNoPage;
        last_page_ = nullptr;
    }

  private:
    struct Page
    {
        std::array<T, kPageSize> slots{};
        std::uint64_t gen = 0;
    };

    /** Pages per arena chunk; chunks are contiguous Page[] blocks. */
    static constexpr std::size_t kArenaChunkPages = 16;

    static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};

    Page *revive(Page *page)
    {
        if (page->gen != gen_) {
            if (page->gen != kNeverUsed) {
                page->slots.fill(T{});
                ++recycled_;
            }
            page->gen = gen_;
            ++npages_;
        }
        return page;
    }

    /** Bump-allocate the next page from the arena. */
    Page *newPage()
    {
        if (arena_used_ == kArenaChunkPages) {
            arena_.push_back(
                std::make_unique<Page[]>(kArenaChunkPages));
            arena_used_ = 0;
        }
        Page *page = &arena_.back()[arena_used_++];
        page->gen = kNeverUsed;
        ++allocated_;
        return page;
    }

    Page *materialize(std::uint64_t p)
    {
        if (p < kMaxDirPages) {
            if (p >= dir_.size()) {
                std::size_t grown = dir_.empty() ? 64 : dir_.size() * 2;
                if (grown < p + 1)
                    grown = static_cast<std::size_t>(p) + 1;
                if (grown > kMaxDirPages)
                    grown = kMaxDirPages;
                dir_.resize(grown, nullptr);
            }
            Page *&slot = dir_[p];
            if (slot == nullptr)
                slot = newPage();
            return revive(slot);
        }
        Page *&slot = overflow_[p];
        if (slot == nullptr)
            slot = newPage();
        return revive(slot);
    }

    /** Generation tag for a freshly allocated, not-yet-live page. */
    static constexpr std::uint64_t kNeverUsed = ~std::uint64_t{0};

    /** Flat directory: page index -> arena page (null until touched). */
    std::vector<Page *> dir_;

    /** Pages whose index exceeds the directory ceiling. */
    std::unordered_map<std::uint64_t, Page *> overflow_;

    /** Contiguous chunks all pages live in; dropped only by clear(). */
    std::vector<std::unique_ptr<Page[]>> arena_;
    std::size_t arena_used_ = kArenaChunkPages;

    std::size_t npages_ = 0;
    std::size_t allocated_ = 0;
    std::uint64_t recycled_ = 0;

    /** Current generation; pages from older generations are stale. */
    std::uint64_t gen_ = 0;

    /** Last-page memo: streaming accesses skip the directory walk. */
    std::uint64_t last_idx_ = kNoPage;
    Page *last_page_ = nullptr;
};

} // namespace hdrd

#endif // HDRD_COMMON_RADIX_TABLE_HH
