#include "common/histogram.hh"

#include <algorithm>
#include <bit>

namespace hdrd
{

double
Log2Histogram::mean() const
{
    return count_ == 0
        ? 0.0
        : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
Log2Histogram::bucket(std::size_t i) const
{
    return i < buckets_.size() ? buckets_[i] : 0;
}

double
Log2Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double target = p / 100.0 * static_cast<double>(count_);
    double seen = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double in_bucket = static_cast<double>(buckets_[i]);
        if (in_bucket == 0.0)
            continue;
        if (seen + in_bucket >= target) {
            if (i == 0)
                return 0.0;
            const double lo = static_cast<double>(1ULL << (i - 1));
            const double hi = static_cast<double>(
                i >= 64 ? ~0ULL : (1ULL << i));
            const double frac = (target - seen) / in_bucket;
            return lo + frac * (hi - lo);
        }
        seen += in_bucket;
    }
    return static_cast<double>(max_);
}

void
Log2Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = ~0ULL;
    max_ = 0;
}

void
Log2Histogram::dump(std::ostream &os, const char *label) const
{
    os << label << " count=" << count_ << " mean=" << mean()
       << " min=" << min() << " max=" << max_ << '\n';
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        const std::uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
        const std::uint64_t hi = i == 0 ? 1 : (1ULL << i);
        os << label << "  [" << lo << ',' << hi << ") "
           << buckets_[i] << '\n';
    }
}

} // namespace hdrd
