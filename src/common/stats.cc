#include "common/stats.hh"

#include <iomanip>
#include <utility>

namespace hdrd
{

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

void
StatGroup::inc(const std::string &stat, std::uint64_t delta)
{
    counters_[stat] += delta;
}

std::uint64_t *
StatGroup::counterCell(const std::string &stat)
{
    return &counters_[stat];
}

void
StatGroup::set(const std::string &stat, double value)
{
    scalars_[stat] = value;
}

std::uint64_t
StatGroup::counter(const std::string &stat) const
{
    auto it = counters_.find(stat);
    return it == counters_.end() ? 0 : it->second;
}

double
StatGroup::scalar(const std::string &stat) const
{
    auto it = scalars_.find(stat);
    return it == scalars_.end() ? 0.0 : it->second;
}

void
StatGroup::formula(const std::string &stat,
                   std::function<double(const StatGroup &)> fn)
{
    formulas_[stat] = std::move(fn);
}

void
StatGroup::reset()
{
    counters_.clear();
    scalars_.clear();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat, value] : counters_)
        os << name_ << '.' << stat << ' ' << value << '\n';
    os << std::setprecision(6);
    for (const auto &[stat, value] : scalars_)
        os << name_ << '.' << stat << ' ' << value << '\n';
    for (const auto &[stat, fn] : formulas_)
        os << name_ << '.' << stat << ' ' << fn(*this) << '\n';
}

} // namespace hdrd
