/**
 * @file
 * Open-addressing hash map from 64-bit object ids to values.
 *
 * The detector keys sync-object and variable state by address-like
 * ids, and the access patterns are narrow: insert-or-touch, lookup,
 * bulk clear — never erase. std::unordered_map pays a node malloc per
 * insert and a pointer chase per probe for flexibility this code
 * never uses. IdMap instead keeps a flat power-of-two slot array
 * (linear probing, splitmix64-mixed keys) pointing into slab-backed
 * value storage, so values have stable addresses, probes stay in one
 * or two cache lines, and inserts amortize to a bump pointer.
 *
 * Not thread-safe; one map per detector engine.
 */

#ifndef HDRD_COMMON_ID_MAP_HH
#define HDRD_COMMON_ID_MAP_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace hdrd
{

/** Flat hash map: uint64 id -> V, no erase, stable value addresses. */
template <typename V>
class IdMap
{
  public:
    IdMap() = default;
    IdMap(const IdMap &) = delete;
    IdMap &operator=(const IdMap &) = delete;

    /** Value for @p key, default-constructed on first touch. */
    V &operator[](std::uint64_t key)
    {
        if (slots_.empty() || (values_.size() + 1) * 4 > slots_.size() * 3)
            rehash(slots_.empty() ? kInitialSlots : slots_.size() * 2);
        std::size_t i = probe(key);
        if (slots_[i].index == kEmpty) {
            slots_[i].key = key;
            slots_[i].index = static_cast<std::uint32_t>(values_.size());
            values_.emplace_back();
        }
        return values_[slots_[i].index];
    }

    /** Pointer to @p key's value, or null when absent. */
    V *find(std::uint64_t key)
    {
        if (values_.empty())
            return nullptr;
        const std::size_t i = probe(key);
        return slots_[i].index == kEmpty ? nullptr
                                         : &values_[slots_[i].index];
    }

    const V *find(std::uint64_t key) const
    {
        return const_cast<IdMap *>(this)->find(key);
    }

    /** Number of distinct keys inserted. */
    std::size_t size() const { return values_.size(); }

    bool empty() const { return values_.empty(); }

    /** Drop every entry; keeps the slot array for reuse. */
    void clear()
    {
        for (Slot &s : slots_)
            s.index = kEmpty;
        values_.clear();
    }

  private:
    static constexpr std::size_t kInitialSlots = 16;
    static constexpr std::uint32_t kEmpty = ~std::uint32_t{0};

    struct Slot
    {
        std::uint64_t key = 0;
        std::uint32_t index = kEmpty;
    };

    /** splitmix64 finalizer: strong mixing for address-like keys. */
    static std::uint64_t mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    /** Slot index holding @p key, or the empty slot it belongs in. */
    std::size_t probe(std::uint64_t key) const
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
        while (slots_[i].index != kEmpty && slots_[i].key != key)
            i = (i + 1) & mask;
        return i;
    }

    void rehash(std::size_t n)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(n, Slot{});
        for (const Slot &s : old) {
            if (s.index == kEmpty)
                continue;
            std::size_t i = probe(s.key);
            slots_[i] = s;
        }
    }

    std::vector<Slot> slots_;

    /** Deque keeps value addresses stable across growth. */
    std::deque<V> values_;
};

} // namespace hdrd

#endif // HDRD_COMMON_ID_MAP_HH
