#include "common/rng.hh"

#include "common/logging.hh"

namespace hdrd
{

namespace
{

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x2545f4914f6cdd1dULL;
}

std::uint64_t
Rng::nextBoundedSlow(std::uint64_t bound)
{
    hdrdAssert(bound > 0, "Rng::nextBounded requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    hdrdAssert(lo <= hi, "Rng::nextRange requires lo <= hi");
    if (lo == 0 && hi == ~0ULL)
        return next64();
    return lo + nextBounded(hi - lo + 1);
}

std::uint64_t
Rng::nextBurst(double p, std::uint64_t cap)
{
    std::uint64_t len = 1;
    while (len < cap && nextBool(p))
        ++len;
    return len;
}

Rng
Rng::split()
{
    return Rng(next64());
}

} // namespace hdrd
