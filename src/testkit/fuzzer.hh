/**
 * @file
 * The schedule-fuzzing driver: generate, cross-check, shrink.
 *
 * Each iteration derives a fresh program + schedule from the master
 * seed, runs the differential oracle over the regime matrix, and on
 * any violation records the execution as a trace, delta-debugs it to
 * a minimal reproduction, and writes both (plus a repro recipe) to
 * the output directory. The run summary is deterministic: two runs
 * with the same configuration produce byte-identical summaries.
 */

#ifndef HDRD_TESTKIT_FUZZER_HH
#define HDRD_TESTKIT_FUZZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "testkit/generator.hh"
#include "testkit/oracle.hh"
#include "testkit/shrinker.hh"

namespace hdrd::testkit
{

/** Fuzz campaign configuration. */
struct FuzzConfig
{
    /** Master seed; every iteration's inputs derive from it. */
    std::uint64_t seed = 1;

    /** Iterations to run. */
    std::uint32_t iterations = 25;

    /** Program generation knobs (per-iteration seed overwritten). */
    GenConfig gen;

    /** Simulated core count. */
    std::uint32_t cores = 4;

    /** Injected harness fault (self-test / CI canary). */
    Fault fault = Fault::kNone;

    /**
     * Hardware-signal fault profile applied to every iteration's
     * demand regimes (default pass-through). When active, iterations
     * also randomize the controller's failsafe hardening.
     */
    pmu::FaultConfig hw_faults;

    /** Shrink failing traces (disable for raw triage speed). */
    bool shrink = true;

    /** Predicate-evaluation budget per shrink. */
    std::uint64_t shrink_budget = 400;

    /** Where failure artifacts are written. */
    std::string out_dir = "hdrd-fuzz-out";

    /** Echo per-iteration lines while running. */
    bool verbose = false;
};

/** Outcome of a whole campaign. */
struct FuzzResult
{
    std::uint32_t iterations = 0;
    std::uint32_t violations = 0;   ///< iterations that violated
    std::uint32_t shrunk = 0;       ///< minimized traces written

    /** Pair totals across iterations (summary statistics). */
    std::uint64_t reference_pairs = 0;
    std::uint64_t demand_pairs = 0;

    /** Mean demand recall over iterations with reference pairs. */
    double recall_sum = 0.0;
    std::uint32_t recall_runs = 0;

    /** Artifact basenames, in creation order. */
    std::vector<std::string> artifacts;

    /** Per-iteration deterministic log lines. */
    std::vector<std::string> lines;

    /** True when no oracle violation occurred. */
    bool ok() const { return violations == 0; }

    /** Byte-stable, machine-diffable campaign summary. */
    std::string summary() const;
};

/**
 * Runs a fuzz campaign.
 */
class Fuzzer
{
  public:
    explicit Fuzzer(FuzzConfig config);

    FuzzResult run();

    const FuzzConfig &config() const { return config_; }

  private:
    /** Handle one violating iteration: record, shrink, persist. */
    void handleViolation(std::uint32_t iter,
                         const GeneratedProgram &gen,
                         const DifferentialOracle &oracle,
                         const Violation &violation,
                         FuzzResult &result);

    FuzzConfig config_;
};

} // namespace hdrd::testkit

#endif // HDRD_TESTKIT_FUZZER_HH
