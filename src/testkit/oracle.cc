#include "testkit/oracle.hh"

#include <algorithm>

namespace hdrd::testkit
{

const char *
faultName(Fault fault)
{
    switch (fault) {
      case Fault::kNone:
        return "none";
      case Fault::kCoarseDemandGranule:
        return "coarse-demand-granule";
    }
    return "?";
}

const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::kDemandNotSubset:
        return "demand-not-subset";
      case ViolationKind::kDetectorPairMismatch:
        return "detector-pair-mismatch";
    }
    return "?";
}

std::string
Violation::describe() const
{
    std::string out = violationKindName(kind);
    out += " [" + regime + "]";
    out += " pair=(" + std::to_string(pair.first) + ","
        + std::to_string(pair.second) + ")";
    return out;
}

DifferentialOracle::DifferentialOracle(OracleConfig config)
    : config_(std::move(config))
{
}

runtime::SimConfig
DifferentialOracle::baseConfig() const
{
    runtime::SimConfig sim;
    sim.mem.ncores = config_.cores;
    sim.granule_shift = config_.granule_shift;
    sim.seed = config_.sched.seed;
    sim.sched_jitter = config_.sched.jitter;
    sim.sched_policy = config_.sched.policy;
    return sim;
}

runtime::SimConfig
DifferentialOracle::referenceConfig() const
{
    runtime::SimConfig sim = baseConfig();
    sim.mode = instr::ToolMode::kContinuous;
    sim.detector = runtime::DetectorKind::kFastTrack;
    return sim;
}

runtime::SimConfig
DifferentialOracle::naiveConfig() const
{
    runtime::SimConfig sim = referenceConfig();
    sim.detector = runtime::DetectorKind::kNaiveHb;
    return sim;
}

runtime::SimConfig
DifferentialOracle::demandConfig(std::uint64_t sav) const
{
    runtime::SimConfig sim = baseConfig();
    sim.mode = instr::ToolMode::kDemand;
    sim.detector = runtime::DetectorKind::kFastTrack;
    sim.gating.strategy = demand::Strategy::kDemandHitm;
    sim.gating.scope = config_.scope;
    sim.gating.pebs_precise_capture = config_.pebs;
    sim.gating.hitm_counter.sample_after = sav;
    sim.faults = config_.hw_faults;
    sim.gating.failsafe = config_.failsafe;
    if (config_.hw_faults.addr_corrupt_prob > 0.0) {
        // A corrupted PEBS address makes retroactive capture unsound
        // by construction — the detector would charge the wrong
        // granule and could fabricate a pair the reference never
        // sees. Real deployments must validate the sampled address;
        // we model that by dropping precise capture under corruption.
        sim.gating.pebs_precise_capture = false;
    }
    if (config_.fault == Fault::kCoarseDemandGranule)
        sim.granule_shift = 6;
    return sim;
}

std::string
DifferentialOracle::demandLabel(std::uint64_t sav)
{
    return "demand.sav" + std::to_string(sav);
}

std::set<SitePair>
DifferentialOracle::sitePairs(const detect::ReportSink &sink)
{
    std::set<SitePair> out;
    for (const detect::RaceReport &r : sink.reports()) {
        SiteId a = r.first_site;
        SiteId b = r.second_site;
        if (a > b)
            std::swap(a, b);
        out.insert({a, b});
    }
    return out;
}

DifferentialResult
DifferentialOracle::check(const ProgramFactory &factory) const
{
    DifferentialResult result;

    // Reference and cross-check regimes.
    auto ref_prog = factory();
    const auto ref =
        runtime::Simulator::runWith(*ref_prog, referenceConfig());
    auto naive_prog = factory();
    const auto naive =
        runtime::Simulator::runWith(*naive_prog, naiveConfig());

    const auto ref_pairs = sitePairs(ref.reports);
    const auto naive_pairs = sitePairs(naive.reports);
    result.reference_pairs = ref_pairs.size();
    result.naive_pairs = naive_pairs.size();

    // 1. Every FastTrack pair must be known to NaiveHB.
    for (const SitePair &p : ref_pairs) {
        if (!naive_pairs.count(p)) {
            result.violations.push_back(
                {ViolationKind::kDetectorPairMismatch, p,
                 "fasttrack-vs-naive"});
        }
    }

    // 2. Each demand regime's pairs must be a subset of the
    //    reference; the first regime also measures recall.
    bool first = true;
    for (const std::uint64_t sav : config_.demand_savs) {
        auto demand_prog = factory();
        const auto demand = runtime::Simulator::runWith(
            *demand_prog, demandConfig(sav));
        const auto demand_pairs = sitePairs(demand.reports);
        for (const SitePair &p : demand_pairs) {
            if (!ref_pairs.count(p)) {
                result.violations.push_back(
                    {ViolationKind::kDemandNotSubset, p,
                     demandLabel(sav)});
            }
        }
        if (first) {
            first = false;
            result.demand_pairs = demand_pairs.size();
            if (!ref_pairs.empty()) {
                std::size_t found = 0;
                for (const SitePair &p : demand_pairs)
                    found += ref_pairs.count(p);
                result.recall = static_cast<double>(found)
                    / static_cast<double>(ref_pairs.size());
            }
        }
    }
    return result;
}

} // namespace hdrd::testkit
