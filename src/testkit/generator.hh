/**
 * @file
 * Seeded generation of random programs, schedules, and detector-state
 * values for the differential fuzz harness and property tests.
 *
 * Everything here is a pure function of its seed: the same GenConfig
 * always yields the same program, so a failing fuzz iteration can be
 * re-created exactly from (master seed, iteration index) alone.
 *
 * Generated programs are race-free by construction — every shared
 * region is read-only after a barrier-ordered init, protected by a
 * dedicated mutex/rwlock, or accessed through atomics — except for
 * the explicitly injected races whose ground truth the builder
 * records. A false-sharing segment (threads hammering adjacent words
 * of one cache line) is mixed in to exercise the HITM path without
 * creating word-granule races.
 */

#ifndef HDRD_TESTKIT_GENERATOR_HH
#define HDRD_TESTKIT_GENERATOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "detect/vector_clock.hh"
#include "runtime/program.hh"
#include "runtime/scheduler.hh"

namespace hdrd::testkit
{

/** A deterministic source of fresh, identical Program instances. */
using ProgramFactory =
    std::function<std::unique_ptr<runtime::Program>()>;

/** Knobs for random program generation. */
struct GenConfig
{
    /** Seed fully determining the generated program. */
    std::uint64_t seed = 1;

    /** Thread-count range (inclusive). */
    std::uint32_t min_threads = 2;
    std::uint32_t max_threads = 6;

    /** Maximum barrier-delimited phases. */
    std::uint32_t max_phases = 4;

    /** Maximum injected races (drawn uniformly in [0, max]). */
    std::uint32_t max_races = 2;

    /** Dynamic accesses per side of an injected race (upper bound). */
    std::uint64_t max_race_repeats = 400;

    /** Base per-segment operation budget (sweep lengths scale on it). */
    std::uint64_t size = 600;

    /** Mix in adjacent-word (false-sharing) segments. */
    bool allow_false_sharing = true;
};

/** A generated program plus its deterministic description. */
struct GeneratedProgram
{
    ProgramFactory factory;
    std::uint32_t nthreads = 0;
    std::uint32_t races = 0;

    /** One-line deterministic description for fuzz summaries. */
    std::string summary;
};

/** Generate the program determined by @p config. */
GeneratedProgram generateProgram(const GenConfig &config);

/** Randomized schedule/platform parameters for one fuzz iteration. */
struct ScheduleParams
{
    std::uint64_t seed = 1;
    double jitter = 0.0;
    runtime::SchedPolicy policy =
        runtime::SchedPolicy::kEarliestFirst;
};

/** Draw schedule parameters from @p rng. */
ScheduleParams randomSchedule(Rng &rng);

/**
 * Random vector clock for algebraic property tests: up to
 * @p max_threads components, each uniform in [0, max_clock], with
 * some components left implicitly zero.
 */
detect::VectorClock randomClock(Rng &rng, std::uint32_t max_threads,
                                detect::ClockValue max_clock);

} // namespace hdrd::testkit

#endif // HDRD_TESTKIT_GENERATOR_HH
