/**
 * @file
 * Delta-debugging trace minimization.
 *
 * Given a recorded trace that reproduces an oracle violation and a
 * predicate "does this candidate still reproduce it", the shrinker
 * repeatedly deletes chunks of operations while the predicate holds,
 * converging on a small (1-minimal over its move set) reproduction.
 *
 * Only data accesses and work ops are deletion candidates: the
 * synchronization skeleton (locks, barriers, thread create/join,
 * atomics) is preserved verbatim so every candidate stays deadlock-
 * free and replayable by construction.
 */

#ifndef HDRD_TESTKIT_SHRINKER_HH
#define HDRD_TESTKIT_SHRINKER_HH

#include <cstdint>
#include <functional>

#include "trace/trace_io.hh"

namespace hdrd::testkit
{

/** Does this candidate trace still reproduce the failure? */
using TracePredicate =
    std::function<bool(const trace::TraceData &)>;

/** Shrink bookkeeping. */
struct ShrinkStats
{
    std::size_t initial_ops = 0;
    std::size_t final_ops = 0;
    std::uint64_t predicate_runs = 0;
};

/**
 * ddmin-style chunk-removal minimizer over a trace's removable ops.
 */
class TraceShrinker
{
  public:
    /**
     * @param predicate failure check; must be true on the input trace
     * @param budget maximum predicate evaluations
     */
    explicit TraceShrinker(TracePredicate predicate,
                           std::uint64_t budget = 2000);

    /**
     * Minimize @p input.
     * @return the smallest reproducing trace found (the input itself
     *         when nothing could be removed).
     */
    trace::TraceData shrink(const trace::TraceData &input);

    const ShrinkStats &stats() const { return stats_; }

  private:
    TracePredicate predicate_;
    std::uint64_t budget_;
    ShrinkStats stats_;
};

} // namespace hdrd::testkit

#endif // HDRD_TESTKIT_SHRINKER_HH
