#include "testkit/fuzzer.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/logging.hh"
#include "trace/trace_program.hh"

namespace hdrd::testkit
{

namespace
{

/** Fixed-precision float formatting (byte-stable summaries). */
std::string
fixed4(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

/** Does @p violation still reproduce on @p factory's program? */
bool
violationHolds(const DifferentialOracle &oracle,
               const Violation &violation,
               const ProgramFactory &factory)
{
    using runtime::Simulator;
    switch (violation.kind) {
      case ViolationKind::kDemandNotSubset: {
        // The regime label encodes the SAV: "demand.savN".
        const std::uint64_t sav =
            std::stoull(violation.regime.substr(10));
        auto dp = factory();
        const auto demand =
            Simulator::runWith(*dp, oracle.demandConfig(sav));
        if (!DifferentialOracle::sitePairs(demand.reports)
                 .count(violation.pair)) {
            return false;
        }
        auto rp = factory();
        const auto ref =
            Simulator::runWith(*rp, oracle.referenceConfig());
        return DifferentialOracle::sitePairs(ref.reports)
                   .count(violation.pair)
            == 0;
      }
      case ViolationKind::kDetectorPairMismatch: {
        auto rp = factory();
        const auto ref =
            Simulator::runWith(*rp, oracle.referenceConfig());
        if (!DifferentialOracle::sitePairs(ref.reports)
                 .count(violation.pair)) {
            return false;
        }
        auto np = factory();
        const auto naive =
            Simulator::runWith(*np, oracle.naiveConfig());
        return DifferentialOracle::sitePairs(naive.reports)
                   .count(violation.pair)
            == 0;
      }
    }
    return false;
}

/** hdrd_sim flags reproducing @p config's schedule and platform. */
std::string
simFlags(const runtime::SimConfig &config)
{
    std::string out = " --seed="
        + std::to_string(config.seed)
        + " --cores=" + std::to_string(config.mem.ncores)
        + " --granule=" + std::to_string(config.granule_shift)
        + " --sched="
        + runtime::schedPolicyName(config.sched_policy);
    if (config.sched_jitter > 0.0)
        out += " --jitter=" + fixed4(config.sched_jitter);
    return out;
}

/** Write the human repro recipe next to the trace artifacts. */
void
writeRepro(const std::string &path, const Violation &violation,
           const DifferentialOracle &oracle,
           const std::string &trace_name,
           const std::string &min_name, const ShrinkStats &stats)
{
    std::ofstream out(path, std::ios::trunc);
    out << "oracle violation: " << violation.describe() << "\n"
        << "full trace:  " << trace_name << "\n"
        << "min trace:   " << min_name << " (" << stats.final_ops
        << " ops, shrunk from " << stats.initial_ops << " in "
        << stats.predicate_runs << " predicate runs)\n\n";

    if (violation.kind == ViolationKind::kDemandNotSubset) {
        const std::uint64_t sav =
            std::stoull(violation.regime.substr(10));
        const auto demand = oracle.demandConfig(sav);
        out << "# shows the pair the demand regime reports:\n"
            << "hdrd_sim --replay=" << min_name
            << " --mode=demand --sav=" << sav << simFlags(demand)
            << " --verbose\n"
            << "# the continuous reference does not report it:\n"
            << "hdrd_sim --replay=" << min_name
            << " --mode=continuous"
            << simFlags(oracle.referenceConfig()) << " --verbose\n";
    } else {
        out << "# FastTrack continuous:\n"
            << "hdrd_sim --replay=" << min_name
            << " --mode=continuous --detector=fasttrack"
            << simFlags(oracle.referenceConfig()) << " --verbose\n"
            << "# NaiveHB continuous (must agree, does not):\n"
            << "hdrd_sim --replay=" << min_name
            << " --mode=continuous --detector=naive"
            << simFlags(oracle.naiveConfig()) << " --verbose\n";
    }
}

} // namespace

Fuzzer::Fuzzer(FuzzConfig config) : config_(std::move(config)) {}

void
Fuzzer::handleViolation(std::uint32_t iter,
                        const GeneratedProgram &gen,
                        const DifferentialOracle &oracle,
                        const Violation &violation,
                        FuzzResult &result)
{
    namespace fs = std::filesystem;
    fs::create_directories(config_.out_dir);
    const std::string base = "fail-s"
        + std::to_string(config_.seed) + "-i"
        + std::to_string(iter);
    const std::string trace_name = base + ".trc";
    const std::string trace_path =
        (fs::path(config_.out_dir) / trace_name).string();

    // Record the violating execution's per-thread op streams. The
    // streams are schedule-independent, so any regime serves; native
    // is the cheapest.
    {
        auto program = gen.factory();
        trace::TraceWriter writer(trace_path, program->name(),
                                  program->numThreads());
        if (!writer.ok()) {
            warn("hdrd_fuzz: cannot write ", trace_path);
            return;
        }
        trace::RecordingProgram recording(*program, writer);
        runtime::SimConfig native;
        native.mode = instr::ToolMode::kNative;
        native.mem.ncores = config_.cores;
        runtime::Simulator::runWith(recording, native);
        writer.finalize();
    }
    result.artifacts.push_back(trace_name);

    trace::TraceData full = trace::TraceData::load(trace_path);
    if (!full.ok()) {
        warn("hdrd_fuzz: recorded trace failed to load: ",
             full.error());
        return;
    }

    auto predicate = [&oracle,
                      violation](const trace::TraceData &cand) {
        ProgramFactory factory = [&cand] {
            return std::make_unique<trace::TraceProgram>(cand);
        };
        return violationHolds(oracle, violation, factory);
    };

    if (!predicate(full)) {
        // The violation did not survive the record/replay round
        // trip; keep the full trace for manual triage.
        result.lines.push_back(
            "  artifact " + trace_name
            + " (violation not trace-reproducible; kept unshrunk)");
        return;
    }

    if (!config_.shrink)
        return;

    TraceShrinker shrinker(predicate, config_.shrink_budget);
    const trace::TraceData min_trace = shrinker.shrink(full);
    const ShrinkStats &stats = shrinker.stats();

    const std::string min_name = base + ".min.trc";
    const std::string min_path =
        (fs::path(config_.out_dir) / min_name).string();
    if (!min_trace.save(min_path)) {
        warn("hdrd_fuzz: cannot write ", min_path);
        return;
    }
    // Round-trip sanity: the on-disk minimized trace must still
    // reproduce, otherwise the artifact is useless.
    const trace::TraceData reloaded =
        trace::TraceData::load(min_path);
    const bool verified = reloaded.ok() && predicate(reloaded);

    const std::string repro_name = base + ".repro.txt";
    writeRepro(
        (fs::path(config_.out_dir) / repro_name).string(),
        violation, oracle, trace_name, min_name, stats);
    result.artifacts.push_back(min_name);
    result.artifacts.push_back(repro_name);
    ++result.shrunk;
    result.lines.push_back(
        "  shrunk " + std::to_string(stats.initial_ops) + " -> "
        + std::to_string(stats.final_ops) + " ops ("
        + std::to_string(stats.predicate_runs)
        + " predicate runs, "
        + (verified ? "min trace verified"
                    : "MIN TRACE UNVERIFIED")
        + ")");
}

FuzzResult
Fuzzer::run()
{
    FuzzResult result;
    Rng master(config_.seed);

    for (std::uint32_t iter = 0; iter < config_.iterations;
         ++iter) {
        // Per-iteration draws, all from the master stream.
        GenConfig gen_cfg = config_.gen;
        gen_cfg.seed = master.next64();

        OracleConfig oracle_cfg;
        oracle_cfg.sched = randomSchedule(master);
        oracle_cfg.cores = config_.cores;
        oracle_cfg.fault = config_.fault;
        static constexpr std::uint64_t kSavMenu[] = {1, 1, 1, 2,
                                                     8, 32};
        oracle_cfg.demand_savs = {
            kSavMenu[master.nextBounded(std::size(kSavMenu))]};
        oracle_cfg.scope = master.nextBool(0.25)
            ? demand::EnableScope::kPerThread
            : demand::EnableScope::kGlobal;
        oracle_cfg.pebs = master.nextBool(0.3);
        if (config_.hw_faults.any()) {
            // Extra master-stream draws happen only under fault
            // injection, so the default campaign's rng sequence —
            // and with it its byte-stable summary — is unchanged.
            oracle_cfg.hw_faults = config_.hw_faults;
            demand::FailsafeConfig fs;
            fs.escalation = master.nextBool(0.5);
            fs.health_window = 1000;
            fs.trip_windows = 1;
            fs.recover_windows = 2;
            fs.sampling_on = 500;
            fs.sampling_period = 2000;
            if (master.nextBool(0.5))
                fs.enable_holdoff = 250;
            oracle_cfg.failsafe = fs;
        }

        const GeneratedProgram gen = generateProgram(gen_cfg);
        const DifferentialOracle oracle(oracle_cfg);
        const DifferentialResult diff = oracle.check(gen.factory);

        result.reference_pairs += diff.reference_pairs;
        result.demand_pairs += diff.demand_pairs;
        if (diff.reference_pairs > 0) {
            result.recall_sum += diff.recall;
            ++result.recall_runs;
        }

        std::string line = "iter " + std::to_string(iter) + " "
            + gen.summary + " sched "
            + runtime::schedPolicyName(oracle_cfg.sched.policy)
            + " j" + fixed4(oracle_cfg.sched.jitter) + " sav "
            + std::to_string(oracle_cfg.demand_savs[0]) + " scope "
            + (oracle_cfg.scope == demand::EnableScope::kPerThread
                   ? "per-thread"
                   : "global")
            + " pebs "
            + std::to_string(oracle_cfg.pebs ? 1 : 0)
            + (config_.hw_faults.any()
                   ? " failsafe "
                       + std::to_string(
                             oracle_cfg.failsafe.escalation ? 1 : 0)
                       + " holdoff "
                       + std::to_string(
                             oracle_cfg.failsafe.enable_holdoff)
                   : std::string())
            + " ref "
            + std::to_string(diff.reference_pairs) + " naive "
            + std::to_string(diff.naive_pairs) + " demand "
            + std::to_string(diff.demand_pairs) + " recall "
            + fixed4(diff.recall);
        if (diff.ok()) {
            line += " ok";
        } else {
            line += " VIOLATION " + diff.violations[0].describe();
            ++result.violations;
        }
        result.lines.push_back(line);
        if (config_.verbose)
            std::printf("%s\n", line.c_str());

        if (!diff.ok()) {
            handleViolation(iter, gen, oracle, diff.violations[0],
                            result);
            if (config_.verbose)
                std::printf("%s\n",
                            result.lines.back().c_str());
        }
        ++result.iterations;
    }
    return result;
}

std::string
FuzzResult::summary() const
{
    std::string out = "hdrd_fuzz summary\n";
    out += "iterations " + std::to_string(iterations) + "\n";
    for (const std::string &line : lines)
        out += line + "\n";
    out += "violations " + std::to_string(violations) + "\n";
    out += "shrunk " + std::to_string(shrunk) + "\n";
    out += "reference_pairs " + std::to_string(reference_pairs)
        + "\n";
    out += "demand_pairs " + std::to_string(demand_pairs) + "\n";
    out += "mean_recall "
        + (recall_runs > 0
               ? fixed4(recall_sum
                        / static_cast<double>(recall_runs))
               : std::string("n/a"))
        + "\n";
    for (const std::string &artifact : artifacts)
        out += "artifact " + artifact + "\n";
    out += std::string("status ")
        + (violations == 0 ? "OK" : "VIOLATIONS") + "\n";
    return out;
}

} // namespace hdrd::testkit
