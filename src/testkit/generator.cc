#include "testkit/generator.hh"

#include <utility>
#include <vector>

#include "common/logging.hh"
#include "workloads/synthetic.hh"

namespace hdrd::testkit
{

namespace
{

using workloads::Builder;
using workloads::Region;

/** How a shared region is kept race-free. */
enum class Protection : std::uint8_t
{
    kMutex = 0,
    kRwLock,
    kAtomic,
};

/**
 * Deterministically build the program for @p config. Called once per
 * oracle regime, so every decision must flow from the config's seed.
 */
std::unique_ptr<workloads::SyntheticProgram>
buildRandom(const GenConfig &config)
{
    Rng rng(config.seed);
    const std::uint32_t span =
        config.max_threads - config.min_threads + 1;
    const auto nthreads = static_cast<std::uint32_t>(
        config.min_threads + rng.nextBounded(span));
    Builder b("fuzzgen", nthreads, config.seed);

    // Shared regions, each with its protection discipline.
    const int nshared = 2 + static_cast<int>(rng.nextBounded(3));
    std::vector<Region> shared;
    std::vector<Protection> prot;
    std::vector<std::uint64_t> guard;
    for (int i = 0; i < nshared; ++i) {
        shared.push_back(b.alloc(4096));
        const auto p =
            static_cast<Protection>(rng.nextBounded(3));
        prot.push_back(p);
        switch (p) {
          case Protection::kMutex:
            guard.push_back(b.newLock());
            break;
          case Protection::kRwLock:
            guard.push_back(b.newRwLock());
            break;
          case Protection::kAtomic:
            guard.push_back(0);
            break;
        }
    }
    const Region ro = b.alloc(8192);
    const Region scratch = b.alloc(512 * 1024);
    // One word per thread: adjacent words of the same line(s), so
    // sweeps over per-thread slices share cache lines but never race
    // at word granularity.
    const Region false_share = b.alloc(nthreads * 8);

    // Init phase: thread 0 fills the read-only data.
    b.sweep(0, ro, ro.words(), 1.0);
    b.barrierAll(b.newBarrier());

    const auto phases = static_cast<std::uint32_t>(
        1 + rng.nextBounded(config.max_phases));
    const auto races = static_cast<std::uint32_t>(
        rng.nextBounded(config.max_races + 1));
    const std::uint64_t sz = config.size;

    for (std::uint32_t phase = 0; phase < phases; ++phase) {
        // Races go at the start of a phase: the preceding barrier
        // aligns the threads so the racy bursts actually overlap.
        for (std::uint32_t r = 0; r < races; ++r) {
            if (r % phases == phase) {
                const auto t1 = static_cast<ThreadId>(
                    rng.nextBounded(nthreads));
                auto t2 = static_cast<ThreadId>(
                    rng.nextBounded(nthreads));
                if (t2 == t1)
                    t2 = (t1 + 1) % nthreads;
                const std::uint64_t repeats = 100
                    + rng.nextBounded(config.max_race_repeats > 100
                                          ? config.max_race_repeats
                                                - 100
                                          : 1);
                workloads::injectRace(b, t1, t2, repeats);
            }
        }
        for (ThreadId t = 0; t < nthreads; ++t) {
            const int segments =
                1 + static_cast<int>(rng.nextBounded(3));
            for (int s = 0; s < segments; ++s) {
                const std::uint64_t pick = rng.nextBounded(
                    config.allow_false_sharing ? 6 : 5);
                switch (pick) {
                  case 0:
                    b.sweep(t, scratch.slice(t, nthreads),
                            sz / 2 + rng.nextBounded(sz),
                            rng.nextDouble(), rng.nextBool(0.3));
                    break;
                  case 1: {
                    const auto region = static_cast<std::size_t>(
                        rng.nextBounded(nshared));
                    const std::uint64_t count =
                        20 + rng.nextBounded(sz / 8 + 1);
                    switch (prot[region]) {
                      case Protection::kMutex:
                        b.lockedRmw(t, shared[region], count,
                                    guard[region],
                                    rng.nextBool(0.5));
                        break;
                      case Protection::kRwLock:
                        // One writer thread per region keeps the
                        // write side exclusive-by-convention; the
                        // rwlock itself makes it race-free.
                        b.rwSweep(t, shared[region], count,
                                  guard[region],
                                  /*write=*/t
                                      == region % nthreads,
                                  rng.nextBool(0.5));
                        break;
                      case Protection::kAtomic:
                        b.atomicSweep(t, shared[region],
                                      count / 4 + 1,
                                      rng.nextBool(0.5));
                        break;
                    }
                    break;
                  }
                  case 2:
                    b.sweep(t, ro, 100 + rng.nextBounded(sz),
                            0.0, rng.nextBool(0.5));
                    break;
                  case 3:
                    b.compute(t, 10 + rng.nextBounded(50), 8);
                    break;
                  case 4:
                    b.sweep(t, scratch.slice(t, nthreads),
                            sz / 4 + rng.nextBounded(sz / 2 + 1),
                            0.1, false, 64);
                    break;
                  default:
                    // False sharing: this thread's own word of the
                    // shared line, mixed reads and writes.
                    b.sweep(t, false_share.slice(t, nthreads),
                            50 + rng.nextBounded(sz / 2 + 1),
                            0.3 + 0.5 * rng.nextDouble());
                    break;
                }
            }
        }
        b.barrierAll(b.newBarrier());
    }
    return b.build();
}

} // namespace

GeneratedProgram
generateProgram(const GenConfig &config)
{
    hdrdAssert(config.min_threads >= 2
                   && config.max_threads >= config.min_threads,
               "bad thread range [", config.min_threads, ", ",
               config.max_threads, "]");
    // One throwaway build yields the metadata for the summary.
    auto probe = buildRandom(config);
    GeneratedProgram out;
    out.nthreads = probe->numThreads();
    out.races =
        static_cast<std::uint32_t>(probe->injectedRaces().size());
    out.summary = "threads=" + std::to_string(out.nthreads)
        + " races=" + std::to_string(out.races);
    out.factory = [config] { return buildRandom(config); };
    return out;
}

ScheduleParams
randomSchedule(Rng &rng)
{
    ScheduleParams params;
    params.seed = rng.next64() | 1;
    switch (rng.nextBounded(4)) {
      case 0:
        params.policy = runtime::SchedPolicy::kRandom;
        break;
      case 1:
        params.policy = runtime::SchedPolicy::kRoundRobin;
        break;
      default:
        // Earliest-first dominates: it is the production policy.
        params.policy = runtime::SchedPolicy::kEarliestFirst;
        break;
    }
    if (params.policy == runtime::SchedPolicy::kEarliestFirst
        && rng.nextBool(0.5)) {
        params.jitter = rng.nextDouble() * 0.4;
    }
    return params;
}

detect::VectorClock
randomClock(Rng &rng, std::uint32_t max_threads,
            detect::ClockValue max_clock)
{
    detect::VectorClock vc;
    const auto n = static_cast<std::uint32_t>(
        rng.nextBounded(max_threads + 1));
    for (std::uint32_t t = 0; t < n; ++t) {
        // Leave some components implicitly zero to exercise the
        // sparse-growth representation.
        if (rng.nextBool(0.3))
            continue;
        vc.set(t, rng.nextBounded(max_clock + 1));
    }
    return vc;
}

} // namespace hdrd::testkit
