#include "testkit/shrinker.hh"

#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hdrd::testkit
{

namespace
{

using OpMatrix = std::vector<std::vector<runtime::Op>>;

/** A removable op's position: (thread, index in thread stream). */
struct Pos
{
    ThreadId tid;
    std::size_t idx;
};

/** All deletion candidates, in (tid, idx) order. */
std::vector<Pos>
removablePositions(const OpMatrix &ops)
{
    std::vector<Pos> out;
    for (ThreadId t = 0; t < ops.size(); ++t) {
        for (std::size_t i = 0; i < ops[t].size(); ++i) {
            if (!ops[t][i].isSync())
                out.push_back({t, i});
        }
    }
    return out;
}

/** @p ops minus the removable window [@p from, @p to). */
OpMatrix
without(const OpMatrix &ops, const std::vector<Pos> &removable,
        std::size_t from, std::size_t to)
{
    // Per-thread sets of indices to drop.
    std::vector<std::vector<std::size_t>> drop(ops.size());
    for (std::size_t i = from; i < to; ++i)
        drop[removable[i].tid].push_back(removable[i].idx);

    OpMatrix out(ops.size());
    for (ThreadId t = 0; t < ops.size(); ++t) {
        const auto &d = drop[t];  // ascending by construction
        std::size_t next = 0;
        out[t].reserve(ops[t].size()
                       - std::min(d.size(), ops[t].size()));
        for (std::size_t i = 0; i < ops[t].size(); ++i) {
            if (next < d.size() && d[next] == i) {
                ++next;
                continue;
            }
            out[t].push_back(ops[t][i]);
        }
    }
    return out;
}

std::size_t
totalOps(const OpMatrix &ops)
{
    std::size_t n = 0;
    for (const auto &v : ops)
        n += v.size();
    return n;
}

} // namespace

TraceShrinker::TraceShrinker(TracePredicate predicate,
                             std::uint64_t budget)
    : predicate_(std::move(predicate)), budget_(budget)
{
}

trace::TraceData
TraceShrinker::shrink(const trace::TraceData &input)
{
    OpMatrix ops;
    ops.reserve(input.nthreads());
    for (ThreadId t = 0; t < input.nthreads(); ++t)
        ops.push_back(input.threadOps(t));
    const std::string name = input.name();

    stats_ = ShrinkStats{};
    stats_.initial_ops = totalOps(ops);

    auto holds = [&](const OpMatrix &candidate) {
        ++stats_.predicate_runs;
        return predicate_(
            trace::TraceData::fromOps(name, candidate));
    };

    std::vector<Pos> removable = removablePositions(ops);
    std::size_t chunk =
        removable.empty() ? 0 : (removable.size() + 1) / 2;

    while (chunk >= 1 && stats_.predicate_runs < budget_) {
        bool removed_any = false;
        // Scan back-to-front so committed removals don't shift the
        // windows still to be tried in this pass.
        std::size_t end = removable.size();
        while (end > 0 && stats_.predicate_runs < budget_) {
            const std::size_t begin =
                end > chunk ? end - chunk : 0;
            OpMatrix candidate = without(ops, removable, begin, end);
            if (holds(candidate)) {
                ops = std::move(candidate);
                removable = removablePositions(ops);
                removed_any = true;
                end = std::min(begin, removable.size());
            } else {
                end = begin;
            }
        }
        if (chunk == 1 && !removed_any)
            break;
        chunk = chunk == 1 ? 1 : (chunk + 1) / 2;
        if (removable.empty())
            break;
        chunk = std::min(chunk, removable.size());
    }

    stats_.final_ops = totalOps(ops);
    return trace::TraceData::fromOps(name, ops);
}

} // namespace hdrd::testkit
