/**
 * @file
 * The cross-detector differential oracle.
 *
 * One generated execution is run under several analysis regimes and
 * the verdicts are cross-checked against invariants that must hold if
 * the detectors are sound relative to each other:
 *
 *  1. FastTrack-continuous race pairs are a subset of
 *     NaiveHB-continuous pairs (the epoch optimization may only drop
 *     redundant pairs, never invent them). Note that only the *pair
 *     sets* are comparable: the representative address stored per
 *     deduplicated pair is whichever dynamic race fired first, and
 *     the two detectors legitimately fire on different accesses.
 *  2. Demand-mode (HITM-gated) pairs are a subset of
 *     FastTrack-continuous pairs: gating may only lose races, never
 *     fabricate them. The surviving fraction is the measured recall —
 *     the paper's "little accuracy loss" claim, quantified per run.
 *
 * Any violation is an oracle failure worth a minimized reproduction.
 */

#ifndef HDRD_TESTKIT_ORACLE_HH
#define HDRD_TESTKIT_ORACLE_HH

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "runtime/simulator.hh"
#include "testkit/generator.hh"

namespace hdrd::testkit
{

/** Deliberate detector corruptions for harness self-tests. */
enum class Fault : std::uint8_t
{
    kNone = 0,

    /**
     * Run the demand regimes at cache-line granularity while the
     * reference stays at word granularity — the classic "coarsen the
     * shadow granule for speed" optimization bug: false sharing shows
     * up as racing pairs the reference never reports.
     */
    kCoarseDemandGranule,
};

/** Printable name for a Fault. */
const char *faultName(Fault fault);

/** A normalized (a <= b) static site pair. */
using SitePair = std::pair<SiteId, SiteId>;

/** What an oracle violation looks like. */
enum class ViolationKind : std::uint8_t
{
    /** A demand-mode pair is missing from the continuous reference. */
    kDemandNotSubset = 0,

    /** A FastTrack pair is missing from NaiveHB's pairs. */
    kDetectorPairMismatch,
};

/** Printable name for a ViolationKind. */
const char *violationKindName(ViolationKind kind);

/** One concrete oracle violation. */
struct Violation
{
    ViolationKind kind = ViolationKind::kDemandNotSubset;

    /** Offending site pair. */
    SitePair pair{kInvalidSite, kInvalidSite};

    /** Regime label the violation was observed under. */
    std::string regime;

    /** Deterministic one-line description. */
    std::string describe() const;
};

/** Oracle configuration: platform, schedule, regimes, faults. */
struct OracleConfig
{
    ScheduleParams sched;
    std::uint32_t cores = 4;
    std::uint32_t granule_shift = 3;

    /** Demand regimes to check, one per sample-after value. */
    std::vector<std::uint64_t> demand_savs = {1};

    /** Demand enable scope (randomized by the fuzzer). */
    demand::EnableScope scope = demand::EnableScope::kGlobal;

    /** PEBS precise capture in the demand regimes. */
    bool pebs = false;

    /** Injected harness fault (self-test). */
    Fault fault = Fault::kNone;

    /**
     * Hardware-signal fault injection applied to the demand regimes
     * only (the continuous references see a perfect signal). The
     * subset invariant must survive any fault profile: a degraded
     * signal may lose races, never fabricate them.
     */
    pmu::FaultConfig hw_faults;

    /** Controller hardening applied to the demand regimes. */
    demand::FailsafeConfig failsafe;
};

/** Everything one differential check measured. */
struct DifferentialResult
{
    std::vector<Violation> violations;

    /** Unique pairs per regime. */
    std::size_t reference_pairs = 0;  ///< FastTrack continuous
    std::size_t naive_pairs = 0;      ///< NaiveHB continuous
    std::size_t demand_pairs = 0;     ///< first demand regime

    /**
     * Fraction of reference pairs the first demand regime re-found
     * (1.0 when the reference found none).
     */
    double recall = 1.0;

    bool ok() const { return violations.empty(); }
};

/**
 * Runs the regime matrix over a program factory and cross-checks.
 */
class DifferentialOracle
{
  public:
    explicit DifferentialOracle(OracleConfig config = {});

    /** Run every regime on fresh programs from @p factory. */
    DifferentialResult check(const ProgramFactory &factory) const;

    /** The continuous FastTrack reference configuration. */
    runtime::SimConfig referenceConfig() const;

    /** The NaiveHB cross-check configuration. */
    runtime::SimConfig naiveConfig() const;

    /** A demand regime configuration (fault applied). */
    runtime::SimConfig demandConfig(std::uint64_t sav) const;

    /** Deterministic regime label for a demand SAV. */
    static std::string demandLabel(std::uint64_t sav);

    /** Normalized site pairs of a report sink. */
    static std::set<SitePair>
    sitePairs(const detect::ReportSink &sink);

    const OracleConfig &config() const { return config_; }

  private:
    runtime::SimConfig baseConfig() const;

    OracleConfig config_;
};

} // namespace hdrd::testkit

#endif // HDRD_TESTKIT_ORACLE_HH
