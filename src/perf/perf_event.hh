/**
 * @file
 * Thin wrapper around Linux perf_event_open (counting mode).
 *
 * The paper reads real hardware sharing events through the kernel's
 * performance-counter interface. This wrapper exercises that same code
 * path on machines (and kernels) that permit it, and degrades
 * gracefully — every experiment in this repository runs against the
 * modelled pmu::Pmu, so a locked-down kernel never blocks anything.
 * See examples/perf_counters.cc for the demo.
 */

#ifndef HDRD_PERF_PERF_EVENT_HH
#define HDRD_PERF_PERF_EVENT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace hdrd::perf
{

/** Generic hardware events we know how to request from the kernel. */
enum class HwEvent
{
    kCpuCycles = 0,
    kInstructions,
    kCacheReferences,
    kCacheMisses,
    /**
     * Offcore/remote-cache HITM-class events are model-specific raw
     * events on real hardware; we request the generic LLC-miss proxy
     * and document the limitation.
     */
    kLLCMisses,
};

/** Printable name for a HwEvent. */
const char *hwEventName(HwEvent event);

/**
 * One counting-mode perf event for the calling thread/process.
 *
 * RAII over the perf fd. Unavailability (no syscall permission,
 * paranoid kernel, seccomp) is reported through available(), never by
 * crashing.
 */
class PerfCounter
{
  public:
    /** Open a counter for @p event on the calling process. */
    explicit PerfCounter(HwEvent event);

    ~PerfCounter();

    PerfCounter(const PerfCounter &) = delete;
    PerfCounter &operator=(const PerfCounter &) = delete;
    PerfCounter(PerfCounter &&other) noexcept;
    PerfCounter &operator=(PerfCounter &&other) noexcept;

    /** True when the kernel granted the counter. */
    bool available() const { return fd_ >= 0; }

    /** Why the counter is unavailable (empty when available). */
    const std::string &error() const { return error_; }

    /** Zero and start counting. */
    bool start();

    /** Stop counting. */
    bool stop();

    /** Current value; nullopt when unavailable or the read fails. */
    std::optional<std::uint64_t> read() const;

    /** Event this counter was opened for. */
    HwEvent event() const { return event_; }

  private:
    HwEvent event_;
    int fd_ = -1;
    std::string error_;
};

/** One-shot probe: can this process open any perf counter at all? */
bool perfAvailable();

} // namespace hdrd::perf

#endif // HDRD_PERF_PERF_EVENT_HH
