#include "perf/perf_event.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hdrd::perf
{

const char *
hwEventName(HwEvent event)
{
    switch (event) {
      case HwEvent::kCpuCycles:
        return "cpu-cycles";
      case HwEvent::kInstructions:
        return "instructions";
      case HwEvent::kCacheReferences:
        return "cache-references";
      case HwEvent::kCacheMisses:
        return "cache-misses";
      case HwEvent::kLLCMisses:
        return "llc-misses";
    }
    return "?";
}

#if defined(__linux__)

namespace
{

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,
                   flags);
}

std::uint64_t
kernelConfigFor(HwEvent event)
{
    switch (event) {
      case HwEvent::kCpuCycles:
        return PERF_COUNT_HW_CPU_CYCLES;
      case HwEvent::kInstructions:
        return PERF_COUNT_HW_INSTRUCTIONS;
      case HwEvent::kCacheReferences:
        return PERF_COUNT_HW_CACHE_REFERENCES;
      case HwEvent::kCacheMisses:
      case HwEvent::kLLCMisses:
        return PERF_COUNT_HW_CACHE_MISSES;
    }
    return PERF_COUNT_HW_CPU_CYCLES;
}

} // namespace

PerfCounter::PerfCounter(HwEvent event) : event_(event)
{
    perf_event_attr attr{};
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = kernelConfigFor(event);
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;

    const long fd = perfEventOpen(&attr, 0, -1, -1, 0);
    if (fd < 0) {
        // Keep the errno detail: "Permission denied" alone does not
        // tell an operator whether to flip perf_event_paranoid or to
        // fix a seccomp policy.
        const int err = errno;
        error_ = std::string("perf_event_open(") + hwEventName(event)
            + "): " + std::strerror(err) + " (errno "
            + std::to_string(err) + ")";
        if (err == EACCES || err == EPERM)
            error_ += "; check /proc/sys/kernel/perf_event_paranoid";
        return;
    }
    fd_ = static_cast<int>(fd);
}

PerfCounter::~PerfCounter()
{
    if (fd_ >= 0)
        close(fd_);
}

PerfCounter::PerfCounter(PerfCounter &&other) noexcept
    : event_(other.event_), fd_(std::exchange(other.fd_, -1)),
      error_(std::move(other.error_))
{
}

PerfCounter &
PerfCounter::operator=(PerfCounter &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            close(fd_);
        event_ = other.event_;
        fd_ = std::exchange(other.fd_, -1);
        error_ = std::move(other.error_);
    }
    return *this;
}

bool
PerfCounter::start()
{
    if (fd_ < 0)
        return false;
    return ioctl(fd_, PERF_EVENT_IOC_RESET, 0) == 0
        && ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0) == 0;
}

bool
PerfCounter::stop()
{
    if (fd_ < 0)
        return false;
    return ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0) == 0;
}

std::optional<std::uint64_t>
PerfCounter::read() const
{
    if (fd_ < 0)
        return std::nullopt;
    // A signal can interrupt the read (EINTR) or truncate it; perf
    // fds have no file offset, so a short read leaves a torn value
    // and the only correct recovery is to redo the whole 8 bytes.
    // Bounded so a pathological signal storm cannot wedge us.
    for (int attempt = 0; attempt < 16; ++attempt) {
        std::uint64_t value = 0;
        const ssize_t n = ::read(fd_, &value, sizeof(value));
        if (n == static_cast<ssize_t>(sizeof(value)))
            return value;
        if (n < 0 && errno != EINTR)
            return std::nullopt;
    }
    return std::nullopt;
}

#else // !__linux__

PerfCounter::PerfCounter(HwEvent event)
    : event_(event), error_("perf_event_open unsupported on this OS")
{
}

PerfCounter::~PerfCounter() = default;

PerfCounter::PerfCounter(PerfCounter &&other) noexcept
    : event_(other.event_), fd_(std::exchange(other.fd_, -1)),
      error_(std::move(other.error_))
{
}

PerfCounter &
PerfCounter::operator=(PerfCounter &&other) noexcept
{
    if (this != &other) {
        event_ = other.event_;
        fd_ = std::exchange(other.fd_, -1);
        error_ = std::move(other.error_);
    }
    return *this;
}

bool
PerfCounter::start()
{
    return false;
}

bool
PerfCounter::stop()
{
    return false;
}

std::optional<std::uint64_t>
PerfCounter::read() const
{
    return std::nullopt;
}

#endif // __linux__

bool
perfAvailable()
{
    PerfCounter probe(HwEvent::kInstructions);
    return probe.available();
}

} // namespace hdrd::perf
