/**
 * @file
 * Phoenix-style scenario: a histogram map-reduce job whose reduction
 * has a bug — one thread merges its bins without taking the lock.
 *
 * Demonstrates:
 *   - building a realistic phase-structured workload with Builder;
 *   - how the demand-driven detector stays off through the long
 *     private map phase and wakes exactly at the buggy reduction;
 *   - reading the analysis-enable timeline out of the RunResult.
 */

#include <cstdio>

#include "instr/cost_model.hh"
#include "runtime/simulator.hh"
#include "workloads/synthetic.hh"

using namespace hdrd;

namespace
{

constexpr std::uint32_t kThreads = 4;

/** Histogram with a locking bug in thread 2's reduction. */
std::unique_ptr<workloads::SyntheticProgram>
buildBuggyHistogram()
{
    workloads::Builder b("histogram_race", kThreads);
    const auto input = b.alloc(2 << 20);
    const auto shared_hist = b.alloc(2048);
    const auto merge_lock = b.newLock();

    for (ThreadId t = 0; t < kThreads; ++t) {
        const auto slice = input.slice(t, kThreads);
        const auto local_hist = b.alloc(2048);
        // Map phase: scan the private slice, bump private bins.
        b.sweep(t, slice, 60000, 0.0);
        b.sweep(t, local_hist, 15000, 0.6, /*random=*/true);
    }
    b.barrierAll(b.newBarrier());
    // Reduce phase: merge local bins into the shared histogram.
    for (ThreadId t = 0; t < kThreads; ++t) {
        if (t == 2) {
            // BUG: thread 2 forgot the lock. The merge still does
            // per-bin work, so the racy window overlaps its peers'
            // locked merges rather than blasting past them.
            b.sweep(t, shared_hist, 512, 0.5, /*random=*/false,
                    /*stride=*/8, /*interleave_work=*/250);
        } else {
            b.lockedRmw(t, shared_hist, 128, merge_lock);
        }
    }
    b.barrierAll(b.newBarrier());
    return b.build();
}

runtime::RunResult
runAs(instr::ToolMode mode)
{
    runtime::SimConfig config;
    config.mode = mode;
    auto program = buildBuggyHistogram();
    return runtime::Simulator::runWith(*program, config);
}

} // namespace

int
main()
{
    const auto native = runAs(instr::ToolMode::kNative);
    const auto continuous = runAs(instr::ToolMode::kContinuous);
    const auto demand = runAs(instr::ToolMode::kDemand);

    std::printf("histogram with an unlocked reduction in thread 2\n\n");
    std::printf("%-12s %12s %9s %7s %10s\n", "mode", "cycles",
                "slowdown", "races", "analyzed%");
    const auto print = [&](const char *mode,
                           const runtime::RunResult &r) {
        std::printf("%-12s %12llu %8.1fx %7zu %9.2f%%\n", mode,
                    static_cast<unsigned long long>(r.wall_cycles),
                    static_cast<double>(r.wall_cycles)
                        / static_cast<double>(native.wall_cycles),
                    r.reports.uniqueCount(),
                    100.0 * r.analyzedFraction());
    };
    print("native", native);
    print("continuous", continuous);
    print("demand", demand);

    std::printf("\nboth tools agree the bug involves thread 2:\n");
    for (const auto &report : demand.reports.reports()) {
        std::printf("  %s race: thread %u vs thread %u (sites %u/%u)\n",
                    detect::raceTypeName(report.type),
                    report.first_tid, report.second_tid,
                    report.first_site, report.second_site);
    }

    std::printf("\ndemand-driven analysis woke up %llu time(s), "
                "analyzed %.2f%% of accesses,\nand still caught the "
                "reduction bug at %.1fx less overhead than "
                "continuous.\n",
                static_cast<unsigned long long>(demand.enables),
                100.0 * demand.analyzedFraction(),
                static_cast<double>(continuous.wall_cycles)
                    / static_cast<double>(demand.wall_cycles));
    return demand.reports.uniqueCount() > 0 ? 0 : 1;
}
