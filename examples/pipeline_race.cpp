/**
 * @file
 * PARSEC-style scenario: a dedup/ferret-like pipeline whose stage
 * handoffs keep the sharing indicator firing, rendered as an
 * enable/disable timeline.
 *
 * Demonstrates:
 *   - the transition history in RunResult (when analysis toggled,
 *     measured in global access indices);
 *   - why pipeline programs see small demand-driven speedups: the
 *     detector is on for most of the run;
 *   - the contrast with a phased program on the same plot.
 */

#include <cstdio>
#include <string>

#include "instr/cost_model.hh"
#include "runtime/simulator.hh"
#include "workloads/registry.hh"

using namespace hdrd;

namespace
{

/** Render the analysis timeline as a fixed-width on/off strip. */
void
timeline(const runtime::RunResult &r, const char *label)
{
    constexpr int kWidth = 64;
    std::string strip(kWidth, '.');
    bool on = false;
    std::size_t next = 0;
    const double per_cell =
        static_cast<double>(r.mem_accesses) / kWidth;
    for (int cell = 0; cell < kWidth; ++cell) {
        const auto cell_start =
            static_cast<std::uint64_t>(cell * per_cell);
        while (next < r.transitions.size()
               && r.transitions[next].at_access <= cell_start) {
            on = r.transitions[next].to_enabled;
            ++next;
        }
        strip[static_cast<std::size_t>(cell)] = on ? '#' : '.';
    }
    std::printf("  %-22s [%s]\n", label, strip.c_str());
}

runtime::RunResult
runDemand(const char *workload, double scale)
{
    workloads::WorkloadParams params;
    params.scale = scale;
    auto program =
        workloads::findWorkload(workload)->factory(params);
    runtime::SimConfig config;
    config.mode = instr::ToolMode::kDemand;
    return runtime::Simulator::runWith(*program, config);
}

} // namespace

int
main()
{
    std::printf("analysis-enabled timeline over the run "
                "('#' = race detector on):\n\n");

    struct Case
    {
        const char *workload;
        const char *why;
    };
    const Case cases[] = {
        {"parsec.ferret",
         "tight pipeline: handoffs every step keep analysis on"},
        {"parsec.vips",
         "coarse pipeline: stage-local work lets it switch off"},
        {"phoenix.kmeans",
         "iterative: one burst per iteration's centroid reread"},
        {"phoenix.linear_regression",
         "no sharing: the detector never wakes up"},
    };

    for (const auto &c : cases) {
        const auto r = runDemand(c.workload, 0.3);
        timeline(r, c.workload);
        std::printf("  %-22s  %llu enables, %.1f%% analyzed — %s\n\n",
                    "", static_cast<unsigned long long>(r.enables),
                    100.0 * r.analyzedFraction(), c.why);
    }

    std::printf("the paper's economics in one picture: speedup comes "
                "from the dots.\n");
    return 0;
}
