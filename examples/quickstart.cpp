/**
 * @file
 * Quickstart: build a small racy program, run it under continuous and
 * demand-driven race detection, and compare what each found and what
 * each cost.
 *
 * This is the 60-second tour of the public API:
 *   1. describe a multithreaded program (workloads::Builder),
 *   2. pick an analysis regime (runtime::SimConfig),
 *   3. run it (runtime::Simulator) and read the RunResult.
 */

#include <cstdio>

#include "instr/cost_model.hh"
#include "runtime/simulator.hh"
#include "workloads/synthetic.hh"

using namespace hdrd;

namespace
{

/** A 4-thread program: private work with one unlocked shared counter. */
std::unique_ptr<workloads::SyntheticProgram>
buildProgram()
{
    workloads::Builder b("quickstart", /*nthreads=*/4);
    const workloads::Region scratch = b.alloc(1 << 20);
    const workloads::Region counter = b.alloc(8);

    for (ThreadId t = 0; t < 4; ++t) {
        // Mostly private churn...
        b.sweep(t, scratch.slice(t, 4), 40000, 0.3);
        // ...but everyone bumps this counter with no lock: a data race.
        b.sweep(t, counter, 500, 0.5);
        b.sweep(t, scratch.slice(t, 4), 40000, 0.3);
    }
    return b.build();
}

runtime::RunResult
runMode(instr::ToolMode mode)
{
    runtime::SimConfig config;
    config.mode = mode;
    auto program = buildProgram();
    return runtime::Simulator::runWith(*program, config);
}

} // namespace

int
main()
{
    const auto native = runMode(instr::ToolMode::kNative);
    const auto continuous = runMode(instr::ToolMode::kContinuous);
    const auto demand = runMode(instr::ToolMode::kDemand);

    const auto slowdown = [&](const runtime::RunResult &r) {
        return static_cast<double>(r.wall_cycles)
            / static_cast<double>(native.wall_cycles);
    };

    std::printf("quickstart: 4 threads, one unlocked shared counter\n");
    std::printf("  %-12s %14s %10s %8s %s\n", "mode", "cycles",
                "slowdown", "races", "analyzed");
    std::printf("  %-12s %14llu %9.1fx %8zu %llu\n", "native",
                static_cast<unsigned long long>(native.wall_cycles),
                1.0, native.reports.uniqueCount(),
                static_cast<unsigned long long>(
                    native.analyzed_accesses));
    std::printf("  %-12s %14llu %9.1fx %8zu %llu\n", "continuous",
                static_cast<unsigned long long>(
                    continuous.wall_cycles),
                slowdown(continuous), continuous.reports.uniqueCount(),
                static_cast<unsigned long long>(
                    continuous.analyzed_accesses));
    std::printf("  %-12s %14llu %9.1fx %8zu %llu\n", "demand",
                static_cast<unsigned long long>(demand.wall_cycles),
                slowdown(demand), demand.reports.uniqueCount(),
                static_cast<unsigned long long>(
                    demand.analyzed_accesses));

    std::printf("\n  demand-driven speedup over continuous: %.1fx\n",
                static_cast<double>(continuous.wall_cycles)
                    / static_cast<double>(demand.wall_cycles));
    std::printf("  demand transitions: %llu enables, %llu disables, "
                "%llu HITM interrupts\n",
                static_cast<unsigned long long>(demand.enables),
                static_cast<unsigned long long>(demand.disables),
                static_cast<unsigned long long>(demand.interrupts));

    std::printf("\n  races reported by demand-driven analysis:\n");
    for (const auto &report : demand.reports.reports()) {
        std::printf("    thread %u (site %u) vs thread %u (site %u) "
                    "at 0x%llx\n",
                    report.first_tid, report.first_site,
                    report.second_tid, report.second_site,
                    static_cast<unsigned long long>(report.addr));
    }
    return demand.reports.uniqueCount() > 0 ? 0 : 1;
}
