/**
 * @file
 * The real-hardware path: open Linux perf_event counters (the same
 * kernel interface the paper's detector programs for HITM sampling),
 * count a busy loop, and report — degrading gracefully when the
 * kernel forbids perf (common in containers).
 *
 * Also demonstrates the modelled PMU side by side, which is what
 * every experiment in this repository actually runs on.
 */

#include <cstdint>
#include <cstdio>

#include "perf/perf_event.hh"
#include "pmu/pmu.hh"

using namespace hdrd;

namespace
{

void
demoRealCounters()
{
    std::printf("-- real perf_event counters (this machine) --\n");
    if (!perf::perfAvailable()) {
        perf::PerfCounter probe(perf::HwEvent::kInstructions);
        std::printf("perf_event_open unavailable: %s\n",
                    probe.error().c_str());
        std::printf("(expected in sandboxes; all experiments use the "
                    "modelled PMU instead)\n");
        return;
    }

    const perf::HwEvent events[] = {
        perf::HwEvent::kInstructions,
        perf::HwEvent::kCpuCycles,
        perf::HwEvent::kCacheReferences,
        perf::HwEvent::kCacheMisses,
    };
    for (const auto event : events) {
        perf::PerfCounter counter(event);
        if (!counter.available()) {
            std::printf("%-18s unavailable (%s)\n",
                        perf::hwEventName(event),
                        counter.error().c_str());
            continue;
        }
        counter.start();
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 2000000; ++i)
            sink += static_cast<std::uint64_t>(i) * 3;
        counter.stop();
        const auto value = counter.read();
        std::printf("%-18s %llu\n", perf::hwEventName(event),
                    static_cast<unsigned long long>(
                        value.value_or(0)));
    }
}

void
demoModelledPmu()
{
    std::printf("\n-- modelled PMU (what the experiments run on) --\n");
    pmu::Pmu pmu(2);
    std::uint64_t interrupts = 0;
    pmu.setOverflowHandler([&](CoreId core, pmu::EventType event) {
        ++interrupts;
        std::printf("  overflow interrupt: core %u, event %s\n",
                    core, pmu::eventName(event));
    });
    // Arm the paper's configuration: interrupt on every HITM load,
    // with a 4-op skid.
    pmu.armAll({.event = pmu::EventType::kHitmLoad,
                .sample_after = 1,
                .skid = 4});

    // Simulate some traffic: 2 HITM loads among ordinary ops.
    for (int op = 0; op < 40; ++op) {
        if (op == 10 || op == 25)
            pmu.recordEvent(0, pmu::EventType::kHitmLoad);
        pmu.recordEvent(0, pmu::EventType::kLoads);
        pmu.retireOp(0);
    }
    std::printf("  core 0 counted %llu loads, %llu hitm loads, "
                "%llu interrupts delivered\n",
                static_cast<unsigned long long>(
                    pmu.count(0, pmu::EventType::kLoads)),
                static_cast<unsigned long long>(
                    pmu.count(0, pmu::EventType::kHitmLoad)),
                static_cast<unsigned long long>(interrupts));
}

} // namespace

int
main()
{
    demoRealCounters();
    demoModelledPmu();
    return 0;
}
