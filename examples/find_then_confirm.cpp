/**
 * @file
 * The find-then-confirm workflow, end to end:
 *
 *   1. RECORD: run the buggy program once (natively) while capturing
 *      its operation streams to a trace file;
 *   2. FIND: replay the trace under cheap demand-driven analysis to
 *      get candidate racy addresses;
 *   3. CONFIRM: replay again watching only those granules — a
 *      near-native-speed run that re-derives exactly the reports
 *      that matter.
 *
 * Demonstrates the trace subsystem, the watchlist strategy, and how
 * replays of one recording compose across regimes.
 */

#include <cstdio>
#include <cstdlib>

#include "instr/cost_model.hh"
#include "runtime/simulator.hh"
#include "trace/trace_program.hh"
#include "workloads/registry.hh"

using namespace hdrd;

int
main()
{
    const std::string path = "/tmp/hdrd_find_then_confirm.trc";
    workloads::WorkloadParams params;
    params.scale = 0.4;
    const auto *info = workloads::findWorkload("micro.racy_burst");
    auto program = info->factory(params);

    // 1. Record a native run.
    {
        trace::TraceWriter writer(path, program->name(),
                                  program->numThreads());
        if (!writer.ok()) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        trace::RecordingProgram recording(*program, writer);
        runtime::SimConfig native;
        native.mode = instr::ToolMode::kNative;
        const auto r = runtime::Simulator::runWith(recording, native);
        writer.finalize();
        std::printf("1. recorded %llu ops (%llu cycles native)\n",
                    static_cast<unsigned long long>(
                        writer.recorded()),
                    static_cast<unsigned long long>(r.wall_cycles));
    }

    auto load = [&] {
        trace::TraceData data = trace::TraceData::load(path);
        if (!data.ok()) {
            std::fprintf(stderr, "trace load failed: %s\n",
                         data.error().c_str());
            std::exit(1);
        }
        return std::make_unique<trace::TraceProgram>(std::move(data));
    };

    // 2. Find: demand-driven replay.
    runtime::SimConfig find_cfg;
    find_cfg.mode = instr::ToolMode::kDemand;
    auto find_prog = load();
    const auto found = runtime::Simulator::runWith(*find_prog,
                                                   find_cfg);
    std::printf("2. find:    %zu candidate races, %.2f%% of accesses "
                "analyzed, %llu cycles\n",
                found.reports.uniqueCount(),
                100.0 * found.analyzedFraction(),
                static_cast<unsigned long long>(found.wall_cycles));

    // 3. Confirm: watch exactly the candidate granules.
    runtime::SimConfig confirm_cfg;
    confirm_cfg.mode = instr::ToolMode::kDemand;
    confirm_cfg.gating.strategy = demand::Strategy::kWatchlist;
    for (const auto &report : found.reports.reports()) {
        confirm_cfg.gating.watchlist.push_back(
            report.addr >> confirm_cfg.granule_shift);
    }
    auto confirm_prog = load();
    const auto confirmed =
        runtime::Simulator::runWith(*confirm_prog, confirm_cfg);
    std::printf("3. confirm: %zu races re-derived watching %zu "
                "granules, %.2f%% analyzed, %llu cycles\n",
                confirmed.reports.uniqueCount(),
                confirm_cfg.gating.watchlist.size(),
                100.0 * confirmed.analyzedFraction(),
                static_cast<unsigned long long>(
                    confirmed.wall_cycles));

    std::remove(path.c_str());
    return confirmed.reports.uniqueCount() > 0 ? 0 : 1;
}
